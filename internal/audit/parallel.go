package audit

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dataaudit/internal/dataset"
)

// Parallel deviation detection. Once induction has finished, a Model is
// immutable and every classifier's Predict is a pure function of the input
// row, so table scoring is embarrassingly parallel: record IDs are sharded
// across a worker pool and the per-shard results are merged back in table
// order, making the output deterministic and identical to AuditTable's.

// parallelMinRows is the table size below which the fan-out overhead
// outweighs the speedup and AuditTableParallel falls back to the
// sequential path.
const parallelMinRows = 256

// chunksPerWorker over-partitions the row range so that shards with
// expensive rows (deep tree paths, many findings) do not straggle.
const chunksPerWorker = 4

// AuditTableParallel checks every record of the table against the
// structure model using up to `workers` goroutines. workers <= 0 selects
// runtime.NumCPU(). The result's reports are byte-identical to
// AuditTable's (same order, same contents); only CheckTime differs.
func (m *Model) AuditTableParallel(tab *dataset.Table, workers int) *Result {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	n := tab.NumRows()
	if workers == 1 || n < parallelMinRows {
		return m.AuditTable(tab)
	}
	if workers > n {
		workers = n
	}

	start := time.Now()
	res := &Result{Reports: make([]RecordReport, n), NumAttrs: m.Schema.Len()}

	numChunks := workers * chunksPerWorker
	chunkSize := (n + numChunks - 1) / numChunks
	type span struct{ lo, hi int }
	work := make(chan span, numChunks)
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		work <- span{lo, hi}
	}
	close(work)

	var wg sync.WaitGroup
	wg.Add(workers)
	trackers := make([]*DimTracker, workers)
	for w := 0; w < workers; w++ {
		tr := NewDimTracker(tab.Schema())
		trackers[w] = tr
		go func() {
			defer wg.Done()
			ck := dataset.NewColumnChunk(tab.Schema())
			scratch := NewChunkScratch(m)
			for sp := range work {
				// Each shard writes a disjoint index range of the shared
				// report slice, so no further merging or locking is needed
				// and the output order matches the sequential scan.
				for lo := sp.lo; lo < sp.hi; lo += batchChunkRows {
					hi := min(lo+batchChunkRows, sp.hi)
					tab.ChunkInto(ck, lo, hi)
					tr.ObserveChunk(ck)
					reps := m.CheckChunk(ck, int64(lo), scratch)
					detachReports(reps, res.Reports[lo:hi])
				}
			}
		}()
	}
	wg.Wait()
	// The dimension accumulators commute, so folding the per-worker
	// trackers in index order reproduces the sequential path's dims no
	// matter how the span channel distributed the work.
	res.Dims = trackers[0].Dims()
	for _, tr := range trackers[1:] {
		MergeDims(res.Dims, tr.Dims())
	}
	res.CheckTime = time.Since(start)
	return res
}

// Merge appends another result's reports to r and accumulates its check
// time. Row indices are shifted so that the merged result looks like one
// contiguous table audit; use it to combine audits of horizontal table
// shards (e.g. per-batch scoring in a streaming load).
//
// Results from relations of different widths must not be merged — their
// findings' attribute indices would silently point at the wrong columns.
// Merge rejects them (and any report whose findings reference an
// out-of-width attribute) with a dataset.RowWidthError wrapping
// dataset.ErrRowWidth; r is unchanged on error.
func (r *Result) Merge(o *Result) error {
	if r.NumAttrs > 0 && o.NumAttrs > 0 && r.NumAttrs != o.NumAttrs {
		return &dataset.RowWidthError{Got: o.NumAttrs, Want: r.NumAttrs}
	}
	width := r.NumAttrs
	if width == 0 {
		width = o.NumAttrs
	}
	if width > 0 {
		for _, rep := range o.Reports {
			for i := range rep.Findings {
				if a := rep.Findings[i].Attr; a < 0 || a >= width {
					return fmt.Errorf("audit: report for row %d references attribute %d outside the %d-attribute schema: %w",
						rep.Row, a, width, dataset.ErrRowWidth)
				}
			}
		}
	}
	if r.NumAttrs == 0 {
		r.NumAttrs = o.NumAttrs
	}
	switch {
	case r.Dims == nil:
		// First (or only) part with dims: adopt a deep copy so later
		// merges never mutate the source result.
		r.Dims = CloneDims(o.Dims)
	case o.Dims != nil:
		MergeDims(r.Dims, o.Dims)
	}
	offset := len(r.Reports)
	for _, rep := range o.Reports {
		if rep.Row >= 0 {
			rep.Row += offset
		}
		// Re-point Best into the copied findings slice.
		rep.Findings = append([]Finding(nil), rep.Findings...)
		rep.repointBest()
		r.Reports = append(r.Reports, rep)
	}
	r.CheckTime += o.CheckTime
	return nil
}

// MergeResults combines per-shard results in order into one Result; it
// fails with a dataset.RowWidthError when the shards disagree on the
// relation width.
func MergeResults(parts ...*Result) (*Result, error) {
	out := &Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if err := out.Merge(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
