package audit

import (
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// The columnar scoring core. CheckRowScratch dispatches per row: every
// record re-enters every classifier, re-copies its leaf distribution,
// re-scans it for the argmax and re-derives the Wilson bounds — even
// though all rows reaching the same rule share all of that. CheckChunk
// flips the loop: each attribute scores a whole ColumnChunk in one pass
// (batched trie descent for rule sets, a columnar kernel for
// mlcore.BlockClassifier families, a per-row fallback for the rest), and
// per-(rule, observed-class) findings are memoized, so the expensive
// confidence math runs once per distinct deviation instead of once per
// row. The produced reports are byte-identical to the row path's — the
// differential suite in columnar_diff_test.go holds both paths to that.

// batchChunkRows is the block size the table scorers feed CheckChunk
// (cmd/benchcore's -chunk flag exists to measure other sizes).
const batchChunkRows = 4096

// chunkHit is one deviation found by an attribute kernel: the chunk row
// it belongs to plus the finished finding.
type chunkHit struct {
	row int32
	f   Finding
}

// ruleCache memoizes findings per (rule, observed class) for one
// attribute's RuleSet. Valid because a rule-set prediction is fully
// determined by the matched rule: every row pair (rule, obs) yields the
// same finding (or none).
type ruleCache struct {
	rs     *audittree.RuleSet // cache identity: rebuilt when the model changes
	stride int                // K+1 slots per rule (observed class -1..K-1)
	state  []uint8            // 0 unknown, 1 no finding, 2 finding cached
	find   []Finding
}

// reset re-keys the cache to a rule set, clearing all entries.
func (c *ruleCache) reset(rs *audittree.RuleSet, k int) {
	c.rs, c.stride = rs, k+1
	n := len(rs.Rules) * c.stride
	if cap(c.state) < n {
		c.state = make([]uint8, n)
		c.find = make([]Finding, n)
	} else {
		c.state = c.state[:n]
		c.find = c.find[:n]
		for i := range c.state {
			c.state[i] = 0
		}
	}
}

// fill computes and caches the slot's finding, mirroring CheckRowScratch
// exactly: no finding when the rule offers no evidence, the observation
// is the prediction, or the error confidence is non-positive.
func (c *ruleCache) fill(am *AttrModel, rule, obs, slot int, confLevel float64) uint8 {
	st := uint8(1)
	dist := &c.rs.Rules[rule].Dist
	n := dist.N()
	if n > 0 {
		cHat, pHat := dist.Best()
		if obs != cHat {
			var pObs float64
			if obs >= 0 {
				pObs = dist.P(obs)
			}
			if errConf := stats.ErrorConfidence(pHat, pObs, n, confLevel); errConf > 0 {
				c.find[slot] = Finding{
					Attr:       am.Class,
					Observed:   obs,
					Predicted:  cHat,
					PHat:       pHat,
					PObs:       pObs,
					N:          n,
					ErrorConf:  errConf,
					Suggestion: am.SuggestedValue(cHat),
				}
				st = 2
			}
		}
	}
	c.state[slot] = st
	return st
}

// ChunkScratch is the per-worker reusable state of the columnar scoring
// path: partition slabs for the batched trie descent, the finding caches,
// a block of prediction distributions, and the hit/finding/report arenas.
// Like ScoreScratch, all buffers grow to the model's high-water mark once
// and are reused, so steady-state chunk scoring performs zero heap
// allocations. A ChunkScratch must not be shared between goroutines.
type ChunkScratch struct {
	match  audittree.MatchScratch
	caches []ruleCache // one per model attribute (only rule sets use theirs)

	obs   []int32               // observed class per row (discretized attrs)
	dists []mlcore.Distribution // block predictions (BlockClassifier path)
	row   []dataset.Value       // gather buffer (per-row fallback path)
	dist  mlcore.Distribution   // prediction buffer (per-row fallback path)

	hits     []chunkHit // attr-major deviation arena
	rowStart []int32    // per-row segment start in the findings arena
	cursor   []int32    // per-row write cursor (ends at the segment end)
	bestSlot []int32    // per-row arena index of the best finding (-1)
	findings []Finding  // row-major findings arena the reports slice into
	reports  []RecordReport

	memo sigMemo // row-signature outcome cache (see sigmemo.go)
}

// NewChunkScratch returns an empty scratch; buffers grow on first use.
func NewChunkScratch(m *Model) *ChunkScratch {
	return &ChunkScratch{caches: make([]ruleCache, len(m.Attrs))}
}

// growInt32 returns buf resized to n, reallocating only past the
// high-water mark.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// observed returns the observed class index per chunk row for the
// attribute (-1 at nulls) — ClassIndex, columnarized. Nominal class
// columns are returned without copying (the chunk already stores -1 at
// nulls); discretized ones are binned into the scratch's obs buffer.
// When rows is non-nil only those positions are filled (the rest of the
// buffer is stale garbage the caller must not read).
func (s *ChunkScratch) observed(am *AttrModel, ck *dataset.ColumnChunk, rows []int32) []int32 {
	col := ck.Col(am.Class)
	if am.Disc == nil {
		return col.Nom
	}
	n := ck.Rows()
	s.obs = growInt32(s.obs, n)
	// Manually inlined sort.SearchFloat64s (Bin's implementation): the
	// closure-free search saves a call per row, and the `cuts[mid] >= v`
	// comparison keeps NaN handling identical.
	cuts := am.Disc.Cuts
	bin := func(r int) {
		if col.Null(r) {
			s.obs[r] = -1
			return
		}
		v := col.Num[r]
		lo, hi := 0, len(cuts)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cuts[mid] >= v {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		s.obs[r] = int32(lo)
	}
	if rows != nil {
		for _, r := range rows {
			bin(int(r))
		}
	} else {
		for r := 0; r < n; r++ {
			bin(r)
		}
	}
	return s.obs
}

// ruleKernel scores one rule-set attribute via the batched trie descent,
// appending a hit per deviating row. rows == nil scores the whole chunk;
// otherwise only the listed rows (the signature-memo miss set). It
// reports false when the rule set has no compiled trie (the caller falls
// back to the per-row path).
func (s *ChunkScratch) ruleKernel(m *Model, ai int, am *AttrModel, rs *audittree.RuleSet, ck *dataset.ColumnChunk, rows []int32) bool {
	var groups []audittree.MatchGroup
	var ok bool
	if rows != nil {
		groups, ok = rs.MatchRows(ck, rows, &s.match)
	} else {
		groups, ok = rs.MatchBlock(ck, &s.match)
	}
	if !ok {
		return false
	}
	cache := &s.caches[ai]
	if cache.rs != rs || cache.stride != am.K+1 {
		cache.reset(rs, am.K)
	}
	obs := s.observed(am, ck, rows)
	for _, g := range groups {
		base := g.Rule * cache.stride
		for _, r := range g.Rows {
			slot := base + int(obs[r]) + 1
			st := cache.state[slot]
			if st == 0 {
				st = cache.fill(am, g.Rule, int(obs[r]), slot, m.Opts.ConfLevel)
			}
			if st == 2 {
				s.hits = append(s.hits, chunkHit{row: r, f: cache.find[slot]})
			}
		}
	}
	return true
}

// blockKernel scores one attribute whose classifier has a columnar batch
// kernel: predictions for the whole chunk in one call, then the row
// path's deviation test per row.
func (s *ChunkScratch) blockKernel(m *Model, am *AttrModel, bc mlcore.BlockClassifier, ck *dataset.ColumnChunk) {
	n := ck.Rows()
	for len(s.dists) < n {
		s.dists = append(s.dists, mlcore.Distribution{})
	}
	dists := s.dists[:n]
	bc.PredictBlockInto(ck, dists)
	obs := s.observed(am, ck, nil)
	for r := 0; r < n; r++ {
		d := &dists[r]
		supp := d.N()
		if supp <= 0 {
			continue
		}
		cHat, pHat := d.Best()
		o := int(obs[r])
		if o == cHat {
			continue
		}
		var pObs float64
		if o >= 0 {
			pObs = d.P(o)
		}
		errConf := stats.ErrorConfidence(pHat, pObs, supp, m.Opts.ConfLevel)
		if errConf <= 0 {
			continue
		}
		s.hits = append(s.hits, chunkHit{row: int32(r), f: Finding{
			Attr:       am.Class,
			Observed:   o,
			Predicted:  cHat,
			PHat:       pHat,
			PObs:       pObs,
			N:          supp,
			ErrorConf:  errConf,
			Suggestion: am.SuggestedValue(cHat),
		}})
	}
}

// rowKernel is the fallback for classifier families without a batch
// kernel (kNN, 1R, Prism, plain C4.5 trees): gather each row out of the
// chunk and run the row path's prediction and deviation test unchanged.
func (s *ChunkScratch) rowKernel(m *Model, am *AttrModel, ck *dataset.ColumnChunk) {
	n := ck.Rows()
	width := ck.Schema().Len()
	if cap(s.row) < width {
		s.row = make([]dataset.Value, width)
	}
	row := s.row[:width]
	for r := 0; r < n; r++ {
		ck.RowInto(r, row)
		am.Classifier.PredictInto(row, &s.dist)
		supp := s.dist.N()
		if supp <= 0 {
			continue
		}
		cHat, pHat := s.dist.Best()
		obs := am.ClassIndex(row[am.Class])
		if obs == cHat {
			continue
		}
		var pObs float64
		if obs >= 0 {
			pObs = s.dist.P(obs)
		}
		errConf := stats.ErrorConfidence(pHat, pObs, supp, m.Opts.ConfLevel)
		if errConf <= 0 {
			continue
		}
		s.hits = append(s.hits, chunkHit{row: int32(r), f: Finding{
			Attr:       am.Class,
			Observed:   obs,
			Predicted:  cHat,
			PHat:       pHat,
			PObs:       pObs,
			N:          supp,
			ErrorConf:  errConf,
			Suggestion: am.SuggestedValue(cHat),
		}})
	}
}

// detachReports copies scratch-backed chunk reports into dst (same
// length) as self-contained values. It is Detach amortized over the
// chunk: all findings land in one shared arena (one allocation per chunk
// instead of one per deviating row), with each report's slice
// cap-clamped to its own segment and Best re-pointed into it. The
// resulting reports are value-identical to per-report Detach output.
func detachReports(reps []RecordReport, dst []RecordReport) {
	total := 0
	for i := range reps {
		total += len(reps[i].Findings)
	}
	var arena []Finding
	if total > 0 {
		arena = make([]Finding, 0, total)
	}
	for i := range reps {
		rep := reps[i]
		if n := len(rep.Findings); n > 0 {
			start := len(arena)
			arena = append(arena, rep.Findings...)
			rep.Findings = arena[start : start+n : start+n]
			rep.repointBest()
		}
		dst[i] = rep
	}
}

// CheckChunk runs deviation detection for every row of the chunk,
// attribute-major: each modelled attribute scores the whole block with
// its best available kernel, then the per-attribute hits are scattered
// into per-row reports. firstRow is the table/stream row index of chunk
// row 0 (reports carry absolute row numbers, like the row path's
// callers set).
//
// The returned reports — including their Findings slices and Best
// pointers — are backed by the scratch and valid only until the next
// CheckChunk call on it; callers that retain a report must Detach it.
// Every report is value-identical to what CheckRowScratch produces for
// the same row.
func (m *Model) CheckChunk(ck *dataset.ColumnChunk, firstRow int64, s *ChunkScratch) []RecordReport {
	n := ck.Rows()
	if len(s.caches) < len(m.Attrs) {
		s.caches = make([]ruleCache, len(m.Attrs))
	}
	s.hits = s.hits[:0]

	// Signature memoization: when the model qualifies, look every row up
	// by its encoded signature and run the kernels only for rows whose
	// signature has not been scored before (nil kernelRows = all rows,
	// the memo-disabled path).
	memo := &s.memo
	if !memo.built || memo.model != m {
		memo.build(m)
	}
	var kernelRows []int32
	useMemo := memo.ok
	if useMemo {
		memo.encode(ck)
		kernelRows = memo.probe(n)
	}

	// Attribute-major scoring. Kernels append hits per attribute, so for
	// any row the arena holds its findings in model-attribute order —
	// the order CheckRowScratch emits them in. (Under the memo, build
	// guaranteed every attribute is a compiled rule set, so only
	// ruleKernel runs and the row subset is always honored.)
	if !useMemo || len(kernelRows) > 0 {
		for ai, am := range m.Attrs {
			if rs, ok := am.Classifier.(*audittree.RuleSet); ok {
				if s.ruleKernel(m, ai, am, rs, ck, kernelRows) {
					continue
				}
			}
			if bc, ok := am.Classifier.(mlcore.BlockClassifier); ok {
				s.blockKernel(m, am, bc, ck)
				continue
			}
			s.rowKernel(m, am, ck)
		}
	}

	// Counting scatter: per-row finding counts → contiguous per-row
	// segments in one findings arena, preserving the attr-major order
	// within each row's segment. Memo-hit rows take their count from the
	// cached entry; kernel-scored rows from their hits.
	s.rowStart = growInt32(s.rowStart, n)
	s.cursor = growInt32(s.cursor, n)
	s.bestSlot = growInt32(s.bestSlot, n)
	if useMemo {
		for r := 0; r < n; r++ {
			if e := memo.hit[r]; e >= 0 {
				s.cursor[r] = memo.entries[e].n
			} else {
				s.cursor[r] = 0
			}
			s.bestSlot[r] = -1
		}
	} else {
		for r := 0; r < n; r++ {
			s.cursor[r] = 0
			s.bestSlot[r] = -1
		}
	}
	for i := range s.hits {
		s.cursor[s.hits[i].row]++
	}
	if useMemo {
		// A row aliased to an earlier in-chunk miss has the same outcome,
		// so the same count. The representative always precedes it and is
		// never itself aliased, so its count is final here.
		for r := 0; r < n; r++ {
			if p := memo.rep[r]; p >= 0 {
				s.cursor[r] = s.cursor[p]
			}
		}
	}
	off := int32(0)
	for r := 0; r < n; r++ {
		c := s.cursor[r]
		s.rowStart[r] = off
		s.cursor[r] = off
		off += c
	}
	total := int(off)
	if cap(s.findings) < total {
		s.findings = make([]Finding, total)
	}
	findings := s.findings[:total]

	if cap(s.reports) < n {
		s.reports = make([]RecordReport, n)
	}
	reps := s.reports[:n]
	for r := 0; r < n; r++ {
		reps[r] = RecordReport{Row: int(firstRow) + r, ID: ck.ID(r)}
	}

	// Copy cached outcomes for memo-hit rows.
	if useMemo {
		for r := 0; r < n; r++ {
			ei := memo.hit[r]
			if ei < 0 {
				continue
			}
			e := &memo.entries[ei]
			if e.n == 0 {
				continue
			}
			start := s.rowStart[r]
			copy(findings[start:start+e.n], memo.arena[e.off:e.off+e.n])
			s.cursor[r] = start + e.n
			s.bestSlot[r] = start + e.best
			reps[r].ErrorConf = findings[start+e.best].ErrorConf
		}
	}

	for i := range s.hits {
		h := &s.hits[i]
		slot := s.cursor[h.row]
		s.cursor[h.row] = slot + 1
		findings[slot] = h.f
		rep := &reps[h.row]
		// Same first-strict-max best selection as the row path; hits for
		// one row arrive in model-attribute order.
		if h.f.ErrorConf > rep.ErrorConf {
			rep.ErrorConf = h.f.ErrorConf
			s.bestSlot[h.row] = slot
		}
	}

	// Alias-copy pass: duplicate-signature rows take their representative's
	// freshly scored segment (the scatter above has completed it).
	if useMemo {
		for r := 0; r < n; r++ {
			p := memo.rep[r]
			if p < 0 {
				continue
			}
			start, pstart, pend := s.rowStart[r], s.rowStart[int(p)], s.cursor[int(p)]
			if cnt := pend - pstart; cnt > 0 {
				copy(findings[start:start+cnt], findings[pstart:pend])
				s.cursor[r] = start + cnt
				s.bestSlot[r] = start + (s.bestSlot[int(p)] - pstart)
				reps[r].ErrorConf = reps[p].ErrorConf
			}
		}
	}

	for r := 0; r < n; r++ {
		rep := &reps[r]
		start, end := s.rowStart[r], s.cursor[r]
		if end > start {
			rep.Findings = findings[start:end:end]
			rep.Best = &rep.Findings[s.bestSlot[r]-start]
		}
		rep.Suspicious = rep.ErrorConf >= m.Opts.MinConfidence
	}

	// Insert the freshly scored rows' outcomes so identical rows later in
	// the table (or stream) take the hit path.
	if useMemo {
		for _, r := range kernelRows {
			if memo.bad[r] || memo.find(memo.sig[r]) >= 0 {
				continue // unmemoizable (probe deduped the rest)
			}
			bestRel := int32(-1)
			if s.bestSlot[r] >= 0 {
				bestRel = s.bestSlot[r] - s.rowStart[r]
			}
			memo.remember(memo.sig[r], findings[s.rowStart[r]:s.cursor[r]], bestRel)
		}
	}
	return reps
}
