package audit

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/quis"
)

// The columnar differential suite: every surface of the chunked scoring
// core — CheckChunk under AuditTable, AuditTableParallel's sharded
// workers, AuditStream's pipeline — is held byte-identical to the
// row-at-a-time reference oracle (checkRowReference), across chunk
// sizes, worker counts, and all induction families. "Byte-identical"
// is literal: the full Result gob-serializes to the same bytes, so
// every finding field, the Suspicious flags, the Best selection and the
// ranking all match, whether a row was scored by a kernel or replayed
// from the signature memo.

// columnarChunkSizes are the chunk geometries the suite shuffles over:
// degenerate single-row chunks, a size coprime to everything, a small
// power of two, and the production batch size.
var columnarChunkSizes = []int{1, 7, 64, 4096}

// columnarWorkerCounts are the parallel fan-outs under test.
var columnarWorkerCounts = []int{1, 2, 4, 8}

// requireSameTallies asserts two per-attribute tally sets agree. Counts
// and maxima must match exactly; the error-confidence sums are compared
// within floating-point refolding tolerance because the stream folds
// per-chunk partial sums while the batch path accumulates row by row.
func requireSameTallies(t *testing.T, want, got []AttrTally) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("tally count differs: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Attr != g.Attr || w.Deviations != g.Deviations || w.Suspicious != g.Suspicious ||
			w.MaxErrorConf != g.MaxErrorConf {
			t.Fatalf("tally %d differs:\nwant %+v\ngot  %+v", i, w, g)
		}
		if diff := math.Abs(w.SumErrorConf - g.SumErrorConf); diff > 1e-9*(1+math.Abs(w.SumErrorConf)) {
			t.Fatalf("tally %d: SumErrorConf drifted by %g (want %g, got %g)", i, diff, w.SumErrorConf, g.SumErrorConf)
		}
	}
}

// TestColumnarDifferentialQUIS is the tentpole contract on the 55k-row
// polluted QUIS fixture: the columnar batch scorers produce reports
// gob-byte-identical to the row-path oracle, for every worker count, and
// the Suspicious() ranking and monitor tallies are unchanged.
func TestColumnarDifferentialQUIS(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fixture is expensive")
	}
	m, dirty := streamQUIS(t)
	want := auditTableReference(m, dirty)
	wantBytes := gobBytes(t, want)

	got := m.AuditTable(dirty)
	if !bytes.Equal(wantBytes, gobBytes(t, got)) {
		t.Fatal("columnar AuditTable is not byte-identical to the row-path reference")
	}
	for _, w := range columnarWorkerCounts {
		if gotPar := m.AuditTableParallel(dirty, w); !bytes.Equal(wantBytes, gobBytes(t, gotPar)) {
			t.Fatalf("AuditTableParallel(workers=%d) is not byte-identical to the reference", w)
		}
	}

	wantSus, gotSus := want.Suspicious(), got.Suspicious()
	if len(wantSus) != len(gotSus) {
		t.Fatalf("suspicious count differs: want %d, got %d", len(wantSus), len(gotSus))
	}
	requireSameRanking(t, wantSus, gotSus)

	wantCount, wantTallies := m.TallyResult(want)
	gotCount, gotTallies := m.TallyResult(got)
	if wantCount != gotCount {
		t.Fatalf("tallied suspicious count differs: want %d, got %d", wantCount, gotCount)
	}
	requireSameTallies(t, wantTallies, gotTallies)
}

// TestColumnarSharedScratchShuffledChunks drives CheckChunk directly with
// one shared scratch over randomly shuffled chunk sizes, so the signature
// memo accumulates state across wildly different chunk geometries — the
// result must still be byte-identical to the reference. This is the test
// that would catch a stale-buffer or memo-aliasing bug that a fixed
// chunking could mask.
func TestColumnarSharedScratchShuffledChunks(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fixture is expensive")
	}
	m, dirty := streamQUIS(t)
	want := auditTableReference(m, dirty)
	wantBytes := gobBytes(t, want)

	n := dirty.NumRows()
	rng := rand.New(rand.NewSource(7))
	ck := dataset.NewColumnChunk(dirty.Schema())
	scratch := NewChunkScratch(m)
	dims := NewDimTracker(dirty.Schema())
	res := &Result{Reports: make([]RecordReport, n), NumAttrs: m.Schema.Len()}
	for lo := 0; lo < n; {
		hi := lo + columnarChunkSizes[rng.Intn(len(columnarChunkSizes))]
		if hi > n {
			hi = n
		}
		dirty.ChunkInto(ck, lo, hi)
		dims.ObserveChunk(ck)
		reps := m.CheckChunk(ck, int64(lo), scratch)
		detachReports(reps, res.Reports[lo:hi])
		lo = hi
	}
	res.Dims = dims.Dims()
	if !bytes.Equal(wantBytes, gobBytes(t, res)) {
		t.Fatal("shuffled-chunk CheckChunk result is not byte-identical to the reference")
	}
}

// TestColumnarStreamDifferential holds AuditStream to the row-path oracle
// across the chunk-size × worker grid: the streamed top list must be the
// reference suspicious ranking (same rows, confidences, findings, Best)
// and the incremental tallies must equal the reference result's.
func TestColumnarStreamDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fixture is expensive")
	}
	m, dirty := streamQUIS(t)
	want := auditTableReference(m, dirty)
	wantSus := want.Suspicious()
	_, wantTallies := m.TallyResult(want)

	for _, chunk := range columnarChunkSizes {
		for _, workers := range columnarWorkerCounts {
			t.Run(fmt.Sprintf("chunk=%d,workers=%d", chunk, workers), func(t *testing.T) {
				res, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{
					ChunkSize: chunk, Workers: workers, TopK: -1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.RowsChecked != int64(dirty.NumRows()) {
					t.Fatalf("RowsChecked %d, want %d", res.RowsChecked, dirty.NumRows())
				}
				if res.NumSuspicious != int64(len(wantSus)) {
					t.Fatalf("NumSuspicious %d, want %d", res.NumSuspicious, len(wantSus))
				}
				if len(res.Top) != len(wantSus) {
					t.Fatalf("stream ranked %d records, reference has %d", len(res.Top), len(wantSus))
				}
				requireSameRanking(t, wantSus, res.Top)
				requireSameTallies(t, wantTallies, res.Attrs)
			})
		}
	}
}

// TestColumnarDifferentialAllInducers runs the columnar-vs-reference
// contract once per induction algorithm on a small QUIS slice, so every
// kernel family is proven: the batched trie descent plus signature memo
// (rule sets), the columnar naive-Bayes kernel, and the per-row fallback
// (kNN, 1R, Prism, plain trees) all inside the full chunked loop.
func TestColumnarDifferentialAllInducers(t *testing.T) {
	sample, err := quis.Generate(quis.Params{NumRecords: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tab := dataset.NewTable(sample.Data.Schema())
	for r := 0; r < 800; r++ {
		tab.AppendRow(sample.Data.Row(r))
	}
	for _, kind := range []InducerKind{
		InducerC45Audit, InducerC45, InducerID3,
		InducerNaiveBayes, InducerKNN, InducerOneR, InducerPrism,
	} {
		t.Run(string(kind), func(t *testing.T) {
			m, err := Induce(tab, Options{MinConfidence: 0.8, Inducer: kind})
			if err != nil {
				t.Fatal(err)
			}
			want := auditTableReference(m, tab)
			wantBytes := gobBytes(t, want)
			if got := m.AuditTable(tab); !bytes.Equal(wantBytes, gobBytes(t, got)) {
				t.Fatal("columnar AuditTable differs from the reference")
			}
			if got := m.AuditTableParallel(tab, 4); !bytes.Equal(wantBytes, gobBytes(t, got)) {
				t.Fatal("AuditTableParallel differs from the reference")
			}
			res, err := m.AuditStream(dataset.NewTableSource(tab), StreamOptions{ChunkSize: 7, Workers: 2, TopK: -1})
			if err != nil {
				t.Fatal(err)
			}
			wantSus := want.Suspicious()
			if len(res.Top) != len(wantSus) {
				t.Fatalf("stream ranked %d records, reference has %d", len(res.Top), len(wantSus))
			}
			requireSameRanking(t, wantSus, res.Top)
			_, wantTallies := m.TallyResult(want)
			requireSameTallies(t, wantTallies, res.Attrs)
		})
	}
}
