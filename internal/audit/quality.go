package audit

import (
	"dataaudit/internal/dataset"
)

// The QualityProfile is the bridge between one-shot auditing and
// continuous monitoring: at induction time the model is applied to its
// own training table and the resulting deviation statistics are frozen as
// the baseline of "normal" quality. internal/monitor later compares the
// same statistics computed over windows of freshly audited rows against
// this baseline to decide whether the data has drifted away from what the
// structure model was induced on.

// ConfHistBins is the number of equal-width error-confidence buckets of a
// confidence histogram: bucket i covers [i/ConfHistBins, (i+1)/ConfHistBins),
// with confidence 1.0 folded into the last bucket.
const ConfHistBins = 10

// ConfHistBucket maps an error confidence in (0, 1] to its histogram
// bucket.
func ConfHistBucket(conf float64) int {
	b := int(conf * ConfHistBins)
	if b >= ConfHistBins {
		b = ConfHistBins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// AttrQuality is the baseline of one audited attribute.
type AttrQuality struct {
	// Attr is the schema column; Name its attribute name (kept inline so a
	// profile stays interpretable without the schema object).
	Attr int    `json:"attr"`
	Name string `json:"name"`
	// DeviationRate is findings with positive error confidence per row;
	// SuspiciousRate is findings at or above the model's minimum
	// confidence per row.
	DeviationRate  float64 `json:"deviationRate"`
	SuspiciousRate float64 `json:"suspiciousRate"`
	// NullRate is the fraction of null values in the training column.
	NullRate float64 `json:"nullRate"`
	// Distinct is the (estimated) number of distinct non-null values in
	// the training column; Uniqueness normalizes it per non-null cell
	// (1 for a key-like column). See AttrDim.
	Distinct   int64   `json:"distinct"`
	Uniqueness float64 `json:"uniqueness"`
	// MeanErrorConf averages the positive error confidences (0 when the
	// attribute produced no deviation).
	MeanErrorConf float64 `json:"meanErrorConf"`
	// ConfHist buckets the positive error confidences (ConfHistBucket).
	ConfHist []int64 `json:"confHist"`
}

// QualityProfile is the frozen quality baseline of a model on its
// training table.
type QualityProfile struct {
	// Rows is the number of training rows the profile was computed on.
	Rows int64 `json:"rows"`
	// SuspiciousRate is the fraction of training records flagged
	// suspicious (Definition 8 at the model's minimum confidence).
	SuspiciousRate float64 `json:"suspiciousRate"`
	// MeanErrorConf averages the positive record-level error confidences.
	MeanErrorConf float64 `json:"meanErrorConf"`
	// DuplicateRate is the fraction of training rows that are exact
	// copies of an earlier row (hash-grouped, then verified cell by
	// cell) — the baseline duplicate pressure of the training data.
	DuplicateRate float64 `json:"duplicateRate"`
	// ConfHist buckets the positive record-level error confidences.
	ConfHist []int64 `json:"confHist"`
	// Attrs holds one baseline per modelled attribute, aligned with
	// Model.Attrs.
	Attrs []AttrQuality `json:"attrs"`
}

// QualityProfile audits the table with the model (workers <= 0 selects
// runtime.NumCPU via AuditTableParallel, whose reports are byte-identical
// to the sequential path) and condenses the result into the baseline. The
// table is normally the training table the model was induced from.
func (m *Model) QualityProfile(tab *dataset.Table, workers int) *QualityProfile {
	res := m.AuditTableParallel(tab, workers)
	return m.QualityProfileFromResult(tab, res)
}

// QualityProfileFromResult condenses an existing audit of tab into the
// baseline, for callers that already hold the Result.
func (m *Model) QualityProfileFromResult(tab *dataset.Table, res *Result) *QualityProfile {
	rows := tab.NumRows()
	p := &QualityProfile{
		Rows:     int64(rows),
		ConfHist: make([]int64, ConfHistBins),
		Attrs:    make([]AttrQuality, len(m.Attrs)),
	}
	slots := make(map[int]int, len(m.Attrs))
	attrDev := make([]int64, len(m.Attrs))
	attrSum := make([]float64, len(m.Attrs))
	for i, am := range m.Attrs {
		slots[am.Class] = i
		p.Attrs[i] = AttrQuality{
			Attr:     am.Class,
			Name:     m.Schema.Attr(am.Class).Name,
			ConfHist: make([]int64, ConfHistBins),
		}
	}

	var susRecords int64
	var recSum float64
	var recDev int64
	for ri := range res.Reports {
		rep := &res.Reports[ri]
		if rep.Suspicious {
			susRecords++
		}
		if rep.ErrorConf > 0 {
			recDev++
			recSum += rep.ErrorConf
			p.ConfHist[ConfHistBucket(rep.ErrorConf)]++
		}
		for fi := range rep.Findings {
			f := &rep.Findings[fi]
			i, ok := slots[f.Attr]
			if !ok || f.ErrorConf <= 0 {
				continue
			}
			aq := &p.Attrs[i]
			attrDev[i]++
			attrSum[i] += f.ErrorConf
			aq.ConfHist[ConfHistBucket(f.ErrorConf)]++
			if f.ErrorConf >= m.Opts.MinConfidence {
				aq.SuspiciousRate++ // raw count; normalized below
			}
		}
	}

	if rows > 0 {
		fr := float64(rows)
		p.SuspiciousRate = float64(susRecords) / fr
		dims := res.Dims
		if dims == nil {
			dims = TableDims(tab) // hand-built result: measure directly
		}
		for i := range p.Attrs {
			aq := &p.Attrs[i]
			aq.DeviationRate = float64(attrDev[i]) / fr
			aq.SuspiciousRate /= fr
			if attrDev[i] > 0 {
				aq.MeanErrorConf = attrSum[i] / float64(attrDev[i])
			}
			d := &dims[aq.Attr]
			aq.NullRate = d.NullRate()
			aq.Distinct = d.Distinct()
			aq.Uniqueness = d.Uniqueness()
		}
		p.DuplicateRate = float64(exactDuplicateRows(tab)) / fr
	}
	if recDev > 0 {
		p.MeanErrorConf = recSum / float64(recDev)
	}
	return p
}

// exactDuplicateRows counts the rows that are exact copies of an earlier
// row: hash-grouped on the full row, then verified cell by cell so a hash
// collision can never inflate the count. (internal/dedup is the full
// detector; this inline counter keeps the audit core dependency-free.)
func exactDuplicateRows(tab *dataset.Table) int64 {
	rows := tab.NumRows()
	width := tab.Schema().Len()
	byHash := make(map[uint64][]int, rows)
	var dups int64
	for r := 0; r < rows; r++ {
		h := dataset.HashTableRow(tab, r, nil)
		matched := false
		for _, prev := range byHash[h] {
			same := true
			for c := 0; c < width; c++ {
				if !tab.Get(prev, c).Equal(tab.Get(r, c)) {
					same = false
					break
				}
			}
			if same {
				dups++
				matched = true
				break
			}
		}
		if !matched {
			byHash[h] = append(byHash[h], r)
		}
	}
	return dups
}
