package audit

import (
	"sort"

	"dataaudit/internal/dataset"
)

// This file supports the interactive error correction of §5.3: "the
// predicted distributions of all classifiers that indicate a data error
// can be useful in finding the true reason for a possible error. This is
// because a difference between an observed and predicted value sometimes
// lays in erroneous base attribute values."
//
// RootCause analysis operationalizes that remark: for a suspicious record,
// each audited attribute is hypothetically replaced by its classifier's
// suggestion and the record is re-checked; a substitution that clears (or
// strongly reduces) the overall error confidence identifies the cell whose
// correction explains the whole record.

// RootCause is one substitution hypothesis for a suspicious record.
type RootCause struct {
	// Attr is the column hypothesized to carry the actual error.
	Attr int
	// Substitution is the value that was tried in its place.
	Substitution dataset.Value
	// Residual is the record's overall error confidence after the
	// substitution (Definition 8 on the modified record).
	Residual float64
	// Clears reports whether the substitution brings the record below the
	// minimum confidence — the single-error explanation succeeded.
	Clears bool
}

// ExplainRow ranks single-cell substitution hypotheses for a suspicious
// record, best (lowest residual) first. It returns nil for records that
// are not suspicious in the first place.
func (m *Model) ExplainRow(row []dataset.Value) []RootCause {
	rep := m.CheckRow(row)
	if !rep.Suspicious {
		return nil
	}
	scratch := make([]dataset.Value, len(row))
	var out []RootCause
	for _, am := range m.Attrs {
		// The hypothesis value is what this attribute's own classifier
		// would predict from the rest of the record.
		dist := am.Classifier.Predict(row)
		if dist.N() <= 0 {
			continue
		}
		best, _ := dist.Best()
		sub := am.SuggestedValue(best)
		if sub.Equal(row[am.Class]) {
			continue // no change, no hypothesis
		}
		copy(scratch, row)
		scratch[am.Class] = sub
		after := m.CheckRow(scratch)
		out = append(out, RootCause{
			Attr:         am.Class,
			Substitution: sub,
			Residual:     after.ErrorConf,
			Clears:       !after.Suspicious,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Residual < out[j].Residual })
	return out
}

// DescribeRootCause renders a hypothesis for quality-engineer output.
func (m *Model) DescribeRootCause(rc *RootCause) string {
	attr := m.Schema.Attr(rc.Attr)
	verdict := "does not fully explain the record"
	if rc.Clears {
		verdict = "explains the record"
	}
	return attr.Name + " := " + attr.Format(rc.Substitution) +
		" (" + verdict + ")"
}
