package audit

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// streamFixtureRows is the audited table size of the differential
// contract; the acceptance bar is ≥ 50k rows.
const streamFixtureRows = 55000

// streamQUIS builds the streaming differential fixture: a ≥50k-row
// polluted QUIS sample and a model induced on it — the workload the
// stream/batch equivalence contract is stated against. The fixture is
// built once and shared (the model is immutable and the table is only
// read).
func streamQUIS(t testing.TB) (*Model, *dataset.Table) {
	t.Helper()
	streamFixtureOnce.Do(func() {
		sample, err := quis.Generate(quis.Params{NumRecords: streamFixtureRows, Seed: 2003})
		if err != nil {
			streamFixtureErr = err
			return
		}
		plan := pollute.Plan{Cell: []pollute.Configured{
			{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
			{Prob: 0.01, P: &pollute.NullValuePolluter{}},
		}}
		dirty, _ := pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))
		m, err := Induce(dirty, Options{MinConfidence: 0.8})
		if err != nil {
			streamFixtureErr = err
			return
		}
		streamFixtureModel, streamFixtureTable = m, dirty
	})
	if streamFixtureErr != nil {
		t.Fatal(streamFixtureErr)
	}
	return streamFixtureModel, streamFixtureTable
}

var (
	streamFixtureOnce  sync.Once
	streamFixtureModel *Model
	streamFixtureTable *dataset.Table
	streamFixtureErr   error
)

// requireSameRanking asserts the streamed top list equals the batch
// suspicious ranking (prefix when the stream was truncated to K).
func requireSameRanking(t *testing.T, want []RecordReport, got []RecordReport) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("stream ranked %d records, batch only %d", len(got), len(want))
	}
	for i := range got {
		w, g := want[i], got[i]
		if w.Row != g.Row || w.ID != g.ID || w.ErrorConf != g.ErrorConf {
			t.Fatalf("rank %d differs: batch row %d conf %.6f, stream row %d conf %.6f",
				i, w.Row, w.ErrorConf, g.Row, g.ErrorConf)
		}
		if !reflect.DeepEqual(w.Findings, g.Findings) {
			t.Fatalf("rank %d: findings differ:\nbatch  %+v\nstream %+v", i, w.Findings, g.Findings)
		}
		if (w.Best == nil) != (g.Best == nil) || (w.Best != nil && !reflect.DeepEqual(*w.Best, *g.Best)) {
			t.Fatalf("rank %d: Best differs", i)
		}
	}
}

// TestAuditStreamMatchesBatch is the differential acceptance contract:
// on a ≥50k-row polluted QUIS table, AuditStream must produce exactly the
// batch path's suspicious set and confidence ranking, for any chunking
// and worker count. Run under -race this also exercises the pipeline's
// reader/worker/collector handoffs.
func TestAuditStreamMatchesBatch(t *testing.T) {
	m, dirty := streamQUIS(t)
	batch := m.AuditTable(dirty)
	want := batch.Suspicious()
	if len(want) < 100 {
		t.Fatalf("fixture too clean: only %d suspicious records", len(want))
	}

	cases := []struct{ chunk, workers, topK int }{
		{0, 0, -1},    // defaults, keep everything
		{1024, 4, -1}, // standard chunking
		{997, 3, -1},  // chunk size coprime to everything
		{64, 8, -1},   // many small chunks
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("chunk=%d,workers=%d", tc.chunk, tc.workers), func(t *testing.T) {
			res, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{
				ChunkSize: tc.chunk, Workers: tc.workers, TopK: tc.topK,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.RowsChecked != int64(dirty.NumRows()) {
				t.Fatalf("RowsChecked %d, want %d", res.RowsChecked, dirty.NumRows())
			}
			if res.NumSuspicious != int64(len(want)) {
				t.Fatalf("NumSuspicious %d, want %d", res.NumSuspicious, len(want))
			}
			if res.TopTruncated {
				t.Fatal("TopTruncated with unlimited K")
			}
			requireSameRanking(t, want, res.Top)

			// Tallies must account for every deviation the batch path saw.
			var batchDeviations int64
			for _, rep := range batch.Reports {
				batchDeviations += int64(len(rep.Findings))
			}
			var streamDeviations int64
			for _, tally := range res.Attrs {
				streamDeviations += tally.Deviations
			}
			if streamDeviations != batchDeviations {
				t.Fatalf("tallied %d deviations, batch saw %d", streamDeviations, batchDeviations)
			}
		})
	}

	t.Run("topK=25 is the ranking prefix", func(t *testing.T) {
		res, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{TopK: 25})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Top) != 25 || !res.TopTruncated {
			t.Fatalf("got %d reports, truncated=%v; want 25, true", len(res.Top), res.TopTruncated)
		}
		requireSameRanking(t, want, res.Top)
	})
}

// TestAuditStreamShuffledChunking re-runs the stream with randomly drawn
// chunk sizes and worker counts: every chunking must reproduce the same
// suspicious set — chunk boundaries are an implementation detail, not an
// observable.
func TestAuditStreamShuffledChunking(t *testing.T) {
	m, dirty := streamQUIS(t)
	want := m.AuditTable(dirty).Suspicious()

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		chunk := 1 + rng.Intn(3000)
		workers := 1 + rng.Intn(8)
		res, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{
			ChunkSize: chunk, Workers: workers, TopK: -1,
		})
		if err != nil {
			t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
		}
		if res.NumSuspicious != int64(len(want)) {
			t.Fatalf("chunk=%d workers=%d: %d suspicious, want %d", chunk, workers, res.NumSuspicious, len(want))
		}
		requireSameRanking(t, want, res.Top)
	}
}

// TestAuditStreamFromCSV drives the whole streaming path end to end: the
// table is serialized to CSV and re-audited through the streaming decoder
// without ever materializing a second table.
func TestAuditStreamFromCSV(t *testing.T) {
	m, dirty := pollutedQUIS(t)
	want := m.AuditTable(dirty).Suspicious()

	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, dirty); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.NewCSVSource(&buf, m.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.AuditStream(src, StreamOptions{TopK: -1, ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSuspicious != int64(len(want)) {
		t.Fatalf("NumSuspicious %d, want %d", res.NumSuspicious, len(want))
	}
	// CSV IDs are the 0-based row index; the polluted table's IDs are
	// dense (cell polluters never add or drop rows), so rankings align.
	requireSameRanking(t, want, res.Top)
}

// TestAuditStreamCallback checks OnSuspicious ordering (ascending rows,
// every suspicious record exactly once) and the abort path.
func TestAuditStreamCallback(t *testing.T) {
	m, dirty := pollutedQUIS(t)
	want := m.AuditTable(dirty)

	var rows []int
	res, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{
		ChunkSize: 333,
		TopK:      10,
		OnSuspicious: func(rep *RecordReport) error {
			rows = append(rows, rep.Row)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != res.NumSuspicious {
		t.Fatalf("callback fired %d times, %d suspicious", len(rows), res.NumSuspicious)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			t.Fatalf("callback out of row order: %d after %d", rows[i], rows[i-1])
		}
	}
	var wantRows []int
	for _, rep := range want.Reports {
		if rep.Suspicious {
			wantRows = append(wantRows, rep.Row)
		}
	}
	if !reflect.DeepEqual(rows, wantRows) {
		t.Fatalf("callback rows diverge from batch suspicious rows (%d vs %d entries)", len(rows), len(wantRows))
	}

	boom := errors.New("boom")
	calls := 0
	_, err = m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{
		ChunkSize: 333,
		OnSuspicious: func(rep *RecordReport) error {
			calls++
			if calls == 5 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("abort error not propagated: %v", err)
	}
	if calls != 5 {
		t.Fatalf("callback fired %d times after abort, want 5", calls)
	}
}

// TestAuditStreamRowLimit checks the MaxRows guard surfaces the typed
// ErrRowLimit.
func TestAuditStreamRowLimit(t *testing.T) {
	m, dirty := pollutedQUIS(t)
	_, err := m.AuditStream(dataset.NewTableSource(dirty), StreamOptions{MaxRows: 1000})
	if !errors.Is(err, ErrRowLimit) {
		t.Fatalf("want ErrRowLimit, got %v", err)
	}
	var rle *RowLimitError
	if !errors.As(err, &rle) || rle.Limit != 1000 {
		t.Fatalf("RowLimitError fields wrong: %+v", rle)
	}
}

// TestAuditStreamSourceErrors checks that source failures — width
// mismatches and malformed cells — abort the stream with the typed error.
func TestAuditStreamSourceErrors(t *testing.T) {
	m, dirty := pollutedQUIS(t)

	t.Run("schema width mismatch", func(t *testing.T) {
		narrow := dataset.NewTable(dataset.MustSchema(dataset.NewNominal("X", "a", "b")))
		_, err := m.AuditStream(dataset.NewTableSource(narrow), StreamOptions{})
		if !errors.Is(err, dataset.ErrRowWidth) {
			t.Fatalf("want ErrRowWidth, got %v", err)
		}
	})

	t.Run("short row mid-stream", func(t *testing.T) {
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, cloneRows(dirty, 0, 500)); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("404,901\n") // short row after 500 good ones
		src, err := dataset.NewCSVSource(&buf, m.Schema)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.AuditStream(src, StreamOptions{ChunkSize: 64})
		if !errors.Is(err, dataset.ErrRowWidth) {
			t.Fatalf("want ErrRowWidth, got %v", err)
		}
	})
}

// TestAuditStreamEmptySource checks the zero-row edge.
func TestAuditStreamEmptySource(t *testing.T) {
	m, dirty := pollutedQUIS(t)
	empty := dataset.NewTable(dirty.Schema())
	res, err := m.AuditStream(dataset.NewTableSource(empty), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsChecked != 0 || res.NumSuspicious != 0 || len(res.Top) != 0 {
		t.Fatalf("non-zero result on empty source: %+v", res)
	}
}

// errSource fails after a fixed number of rows — exercises reader-error
// shutdown without CSV in the loop.
type errSource struct {
	schema *dataset.Schema
	tab    *dataset.Table
	after  int
	n      int
}

func (s *errSource) Schema() *dataset.Schema { return s.schema }

func (s *errSource) Next(buf []dataset.Value) (int64, error) {
	if s.n >= s.after {
		return 0, io.ErrUnexpectedEOF
	}
	s.tab.RowInto(s.n%s.tab.NumRows(), buf)
	s.n++
	return int64(s.n - 1), nil
}

// TestAuditStreamReaderErrorShutsDownCleanly checks a mid-stream source
// failure drains the pipeline (no goroutine leak, no deadlock under any
// chunking) and surfaces the error.
func TestAuditStreamReaderErrorShutsDownCleanly(t *testing.T) {
	m, dirty := pollutedQUIS(t)
	for _, after := range []int{0, 1, 100, 5000} {
		src := &errSource{schema: dirty.Schema(), tab: dirty, after: after}
		_, err := m.AuditStream(src, StreamOptions{ChunkSize: 64, Workers: 4})
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("after=%d: want ErrUnexpectedEOF, got %v", after, err)
		}
	}
}
