package audit

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dataaudit/internal/audittree"
	"dataaudit/internal/c45"
	"dataaudit/internal/knn"
	"dataaudit/internal/nbayes"
	"dataaudit/internal/ruleind"
)

// Structure models serialize with encoding/gob so induction and checking
// can run in different processes (§2.2: "While the time-consuming structure
// induction can be prepared off-line, new data can be checked for
// deviations and loaded quickly").

func init() {
	// Register every concrete classifier that can sit behind the
	// mlcore.Classifier interface inside a Model.
	gob.Register(&c45.Tree{})
	gob.Register(&audittree.RuleSet{})
	gob.Register(&nbayes.Model{})
	gob.Register(&knn.Model{})
	gob.Register(&ruleind.OneRModel{})
	gob.Register(&ruleind.PrismModel{})
}

// Encode writes the model in the native binary format.
func Encode(w io.Writer, m *Model) error {
	return gob.NewEncoder(w).Encode(m)
}

// Decode reads a model written by Encode.
func Decode(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("audit: decoding model: %w", err)
	}
	return &m, nil
}

// Marshal serializes the model to bytes.
func Marshal(m *Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes a model from bytes.
func Unmarshal(b []byte) (*Model, error) { return Decode(bytes.NewReader(b)) }

// Save stores the model in a file. The write is crash-safe: the model is
// encoded into a temporary file in the target directory and moved into
// place with os.Rename, so a reader never observes a half-written model —
// the guarantee internal/registry's atomic publish is built on.
func Save(path string, m *Model) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Encode(tmp, m); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp makes the file 0600; restore the permissions a plain
	// os.Create would have produced so other processes (e.g. a scoring
	// daemon under another user) can still read published models.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads a model stored by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
