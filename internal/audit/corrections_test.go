package audit

import (
	"fmt"
	"strings"
	"testing"

	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
)

// TestApplyCorrections seeds deviations into a consistent table and
// verifies §5.3: every suspicious record's best-finding attribute is
// replaced by the classifier's suggestion, everything else is untouched,
// and the input table is not mutated.
func TestApplyCorrectionsTableInvariants(t *testing.T) {
	tab := engineTable(t, 5000, 81)
	// Seed two deviations: GBM inconsistent with BRV on rows 0 and 7.
	for _, r := range []int{0, 7} {
		brv := tab.Get(r, 0).NomIdx()
		tab.Set(r, 2, dataset.Nom((brv+1)%3))
	}
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := m.AuditTable(tab)
	if res.NumSuspicious() == 0 {
		t.Fatal("fixture produced no suspicious records")
	}

	fixed := m.ApplyCorrections(tab, res)
	if fixed == tab {
		t.Fatal("ApplyCorrections must return a copy, not the input")
	}

	corrected := 0
	for r, rep := range res.Reports {
		for c := 0; c < tab.NumCols(); c++ {
			before, after := tab.Get(r, c), fixed.Get(r, c)
			isCorrection := rep.Suspicious && rep.Best != nil && c == rep.Best.Attr
			if isCorrection {
				if !after.Equal(rep.Best.Suggestion) {
					t.Fatalf("row %d col %d: want suggestion %v, got %v", r, c, rep.Best.Suggestion, after)
				}
				if !after.Equal(before) {
					corrected++
				}
				continue
			}
			if !after.Equal(before) {
				t.Fatalf("row %d col %d changed without a suspicious best finding: %v -> %v", r, c, before, after)
			}
		}
	}
	if corrected == 0 {
		t.Fatal("no cell was actually corrected")
	}

	// The seeded rows must be restored to the consistent GBM value.
	for _, r := range []int{0, 7} {
		brv := fixed.Get(r, 0).NomIdx()
		if fixed.Get(r, 2).NomIdx() != brv {
			t.Fatalf("row %d: seeded deviation not corrected (BRV %d, GBM %d)", r, brv, fixed.Get(r, 2).NomIdx())
		}
	}

	// Re-auditing the corrected table must flag fewer records.
	if again := m.AuditTable(fixed); again.NumSuspicious() >= res.NumSuspicious() {
		t.Fatalf("corrections did not reduce suspicious records: %d -> %d",
			res.NumSuspicious(), again.NumSuspicious())
	}
}

// TestApplyCorrectionsSkipsNonSuspicious: a result with no suspicious
// reports yields an identical copy.
func TestApplyCorrectionsNoOpWhenNotSuspicious(t *testing.T) {
	tab := engineTable(t, 2000, 82)
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := m.AuditTable(tab)
	// Force everything non-suspicious regardless of the audit outcome.
	for i := range res.Reports {
		res.Reports[i].Suspicious = false
	}
	fixed := m.ApplyCorrections(tab, res)
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if !fixed.Get(r, c).Equal(tab.Get(r, c)) {
				t.Fatalf("row %d col %d changed despite no suspicious reports", r, c)
			}
		}
	}
}

// TestDescribeFinding renders the §6.2 report line for nominal, numeric
// and null observations.
func TestDescribeFindingRendering(t *testing.T) {
	tab := engineTable(t, 5000, 83)
	brv := tab.Get(0, 0).NomIdx()
	tab.Set(0, 2, dataset.Nom((brv+1)%3)) // nominal deviation on GBM
	tab.Set(1, 2, dataset.Null())         // missing GBM
	// FilterReachableOnly keeps the pure rules (as in the §2.2 offline
	// scenario), so the clean BRV of row 1 still selects a rule and the
	// null observation yields a finding.
	m, err := Induce(tab, Options{MinConfidence: 0.8, Filter: audittree.FilterReachableOnly})
	if err != nil {
		t.Fatal(err)
	}
	schema := tab.Schema()

	rep := m.CheckRow(tab.Row(0))
	if rep.Best == nil {
		t.Fatal("seeded deviation produced no best finding")
	}
	text := m.DescribeFinding(rep.Best)
	attr := schema.Attr(rep.Best.Attr)
	if !strings.Contains(text, attr.Name) {
		t.Fatalf("description must name the attribute %q: %q", attr.Name, text)
	}
	observed := attr.Domain[rep.Best.Observed]
	expected := attr.Domain[rep.Best.Predicted]
	if !strings.Contains(text, "observed "+observed) || !strings.Contains(text, "expected "+expected) {
		t.Fatalf("description must carry observed/expected labels: %q", text)
	}
	wantConf := fmt.Sprintf("%.2f%%", rep.Best.ErrorConf*100)
	if !strings.Contains(text, wantConf) {
		t.Fatalf("description must carry the error confidence %s: %q", wantConf, text)
	}

	// A null observation renders as "?".
	nullRep := m.CheckRow(tab.Row(1))
	var nullFinding *Finding
	for i := range nullRep.Findings {
		if nullRep.Findings[i].Attr == 2 && nullRep.Findings[i].Observed < 0 {
			nullFinding = &nullRep.Findings[i]
		}
	}
	if nullFinding == nil {
		t.Fatal("missing GBM produced no finding with a null observation")
	}
	if text := m.DescribeFinding(nullFinding); !strings.Contains(text, "observed ?") {
		t.Fatalf("null observation must render as ?: %q", text)
	}

	// A finding for an unmodelled attribute renders without labels
	// instead of panicking.
	orphan := &Finding{Attr: 1, Observed: 0, Predicted: 1}
	mSkip, err := Induce(tab, Options{MinConfidence: 0.8, SkipClasses: []string{"KBM"}})
	if err != nil {
		t.Fatal(err)
	}
	if text := mSkip.DescribeFinding(orphan); !strings.Contains(text, "KBM") {
		t.Fatalf("orphan finding must still name its attribute: %q", text)
	}
}
