package audit

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
)

// engineSchema mirrors the §6.2 QUIS flavor plus a numeric attribute.
func engineSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("BRV", "404", "501", "600"),
		dataset.NewNominal("KBM", "01", "02"),
		dataset.NewNominal("GBM", "901", "911", "950"),
		dataset.NewNumeric("DISP", 1000, 4000),
	)
}

// engineTable: BRV determines GBM; DISP correlates with BRV
// (404 -> ~1500, 501 -> ~2500, 600 -> ~3500).
func engineTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(engineSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		brv := rng.Intn(3)
		disp := 1500 + float64(brv)*1000 + rng.NormFloat64()*80
		if disp < 1000 {
			disp = 1000
		}
		if disp > 4000 {
			disp = 4000
		}
		tab.AppendRow([]dataset.Value{
			dataset.Nom(brv), dataset.Nom(rng.Intn(2)), dataset.Nom(brv), dataset.Num(disp),
		})
	}
	return tab
}

func TestInduceBuildsModelPerAttribute(t *testing.T) {
	tab := engineTable(t, 3000, 71)
	m, err := Induce(tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Attrs) != 4 {
		t.Fatalf("expected 4 attribute models, got %d", len(m.Attrs))
	}
	for _, am := range m.Attrs {
		if am.Classifier == nil || am.K < 2 {
			t.Fatalf("bad attribute model: %+v", am)
		}
		for _, b := range am.Base {
			if b == am.Class {
				t.Fatalf("class attribute leaked into its own base set")
			}
		}
	}
	if m.TrainRows != 3000 || m.InduceTime <= 0 {
		t.Fatalf("bookkeeping missing: rows=%d time=%v", m.TrainRows, m.InduceTime)
	}
}

func TestCheckRowFlagsSeededDeviation(t *testing.T) {
	tab := engineTable(t, 5000, 72)
	// Seed one deviation: record 0 gets GBM inconsistent with BRV.
	brv := tab.Get(0, 0).NomIdx()
	tab.Set(0, 2, dataset.Nom((brv+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.CheckRow(tab.Row(0))
	if !rep.Suspicious {
		t.Fatalf("seeded deviation not flagged (conf=%g)", rep.ErrorConf)
	}
	if rep.Best == nil || rep.Best.Attr != 2 {
		t.Fatalf("best finding should point at GBM, got %+v", rep.Best)
	}
	if rep.Best.Suggestion.IsNull() || rep.Best.Suggestion.NomIdx() != brv {
		t.Fatalf("suggestion should restore the consistent GBM value")
	}
	// A clean record must not be suspicious.
	clean := m.CheckRow(tab.Row(1))
	if clean.Suspicious {
		t.Fatalf("clean record flagged with conf %g (best: %+v)", clean.ErrorConf, clean.Best)
	}
}

func TestNumericClassAuditViaBins(t *testing.T) {
	tab := engineTable(t, 5000, 73)
	// Seed a numeric deviation: a 404 engine with displacement 3900.
	tab.Set(0, 0, dataset.Nom(0))
	tab.Set(0, 2, dataset.Nom(0))
	tab.Set(0, 3, dataset.Num(3900))
	// Bins=3 aligns the equal-frequency bins with the three displacement
	// clusters; FilterReachableOnly keeps the (otherwise pure) rules, as in
	// the offline-induction scenario of §2.2.
	m, err := Induce(tab, Options{MinConfidence: 0.8, Bins: 3, Filter: audittree.FilterReachableOnly})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.CheckRow(tab.Row(0))
	if !rep.Suspicious {
		t.Fatalf("numeric deviation not flagged (conf=%g)", rep.ErrorConf)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Attr == 3 {
			found = true
			if f.Suggestion.IsNull() || math.Abs(f.Suggestion.Float()-1500) > 400 {
				t.Fatalf("numeric suggestion should sit near the 404 cluster, got %v", f.Suggestion)
			}
		}
	}
	if !found {
		t.Fatalf("no finding on the numeric attribute; findings: %+v", rep.Findings)
	}
}

func TestNullObservedValueFlagged(t *testing.T) {
	tab := engineTable(t, 5000, 74)
	tab.Set(0, 2, dataset.Null())
	// Null training instances are dropped during induction, so the GBM
	// rules are pure; FilterPaper would delete them (they cannot flag any
	// *training* deviation). FilterReachableOnly is the mode for exactly
	// this completeness-oriented use.
	m, err := Induce(tab, Options{MinConfidence: 0.8, Filter: audittree.FilterReachableOnly})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.CheckRow(tab.Row(0))
	if !rep.Suspicious {
		t.Fatalf("missing GBM should be flagged (completeness dimension), conf=%g", rep.ErrorConf)
	}
	if rep.Best.Observed != -1 {
		t.Fatalf("observed must be -1 for null")
	}
	if rep.Best.Suggestion.IsNull() {
		t.Fatalf("a concrete substitution must be suggested")
	}
}

func TestAuditTableAndRanking(t *testing.T) {
	tab := engineTable(t, 4000, 75)
	// Seed deviations of different strengths.
	tab.Set(0, 2, dataset.Nom((tab.Get(0, 0).NomIdx()+1)%3))
	tab.Set(1, 2, dataset.Nom((tab.Get(1, 0).NomIdx()+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := m.AuditTable(tab)
	if len(res.Reports) != tab.NumRows() {
		t.Fatalf("reports not aligned with rows")
	}
	sus := res.Suspicious()
	if len(sus) < 2 {
		t.Fatalf("expected at least the 2 seeded deviations, got %d", len(sus))
	}
	for i := 1; i < len(sus); i++ {
		if sus[i].ErrorConf > sus[i-1].ErrorConf+1e-12 {
			t.Fatalf("suspicious records not ranked by confidence")
		}
	}
	if res.NumSuspicious() != len(sus) {
		t.Fatalf("NumSuspicious mismatch")
	}
	seeded := map[int64]bool{tab.ID(0): true, tab.ID(1): true}
	hits := 0
	for _, rep := range sus {
		if seeded[rep.ID] {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("seeded deviations missing from the suspicious list (%d/2)", hits)
	}
}

func TestApplyCorrections(t *testing.T) {
	tab := engineTable(t, 4000, 76)
	brv := tab.Get(0, 0).NomIdx()
	tab.Set(0, 2, dataset.Nom((brv+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := m.AuditTable(tab)
	corrected := m.ApplyCorrections(tab, res)
	if corrected.Get(0, 2).NomIdx() != brv {
		t.Fatalf("correction not applied: %v", corrected.Get(0, 2))
	}
	// Original table untouched.
	if tab.Get(0, 2).NomIdx() == brv {
		t.Fatalf("ApplyCorrections mutated its input")
	}
}

func TestBaseAttrRestriction(t *testing.T) {
	tab := engineTable(t, 2000, 77)
	m, err := Induce(tab, Options{
		BaseAttrs: map[string][]string{"GBM": {"BRV"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, am := range m.Attrs {
		if m.Schema.Attr(am.Class).Name == "GBM" {
			if len(am.Base) != 1 || m.Schema.Attr(am.Base[0]).Name != "BRV" {
				t.Fatalf("base restriction ignored: %v", am.Base)
			}
		}
	}
}

func TestSkipClasses(t *testing.T) {
	tab := engineTable(t, 2000, 78)
	m, err := Induce(tab, Options{SkipClasses: []string{"DISP", "KBM"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, am := range m.Attrs {
		name := m.Schema.Attr(am.Class).Name
		if name == "DISP" || name == "KBM" {
			t.Fatalf("skipped attribute %s was modelled", name)
		}
	}
	if len(m.Attrs) != 2 {
		t.Fatalf("expected 2 models, got %d", len(m.Attrs))
	}
}

func TestAllInducersProduceWorkingModels(t *testing.T) {
	tab := engineTable(t, 800, 79)
	brv := tab.Get(0, 0).NomIdx()
	tab.Set(0, 2, dataset.Nom((brv+1)%3))
	for _, kind := range []InducerKind{
		InducerC45Audit, InducerC45, InducerID3, InducerNaiveBayes, InducerKNN, InducerOneR, InducerPrism,
	} {
		m, err := Induce(tab, Options{Inducer: kind, MinConfidence: 0.5})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rep := m.CheckRow(tab.Row(0))
		if rep.ErrorConf < 0 || rep.ErrorConf > 1 {
			t.Fatalf("%s: error confidence out of range: %g", kind, rep.ErrorConf)
		}
	}
	if _, err := Induce(tab, Options{Inducer: "bogus"}); err == nil {
		t.Fatalf("unknown inducer must fail")
	}
}

func TestModelPersistenceRoundTrip(t *testing.T) {
	tab := engineTable(t, 3000, 80)
	tab.Set(0, 2, dataset.Nom((tab.Get(0, 0).NomIdx()+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// The restored model must produce identical reports.
	for r := 0; r < 50; r++ {
		a := m.CheckRow(tab.Row(r))
		bb := back.CheckRow(tab.Row(r))
		if math.Abs(a.ErrorConf-bb.ErrorConf) > 1e-12 || a.Suspicious != bb.Suspicious {
			t.Fatalf("row %d: reports differ after round-trip: %g vs %g", r, a.ErrorConf, bb.ErrorConf)
		}
	}
}

func TestModelPersistenceAllInducers(t *testing.T) {
	tab := engineTable(t, 400, 81)
	for _, kind := range []InducerKind{
		InducerC45Audit, InducerC45, InducerID3, InducerNaiveBayes, InducerKNN, InducerOneR, InducerPrism,
	} {
		m, err := Induce(tab, Options{Inducer: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s marshal: %v", kind, err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", kind, err)
		}
		a := m.CheckRow(tab.Row(0))
		bb := back.CheckRow(tab.Row(0))
		if math.Abs(a.ErrorConf-bb.ErrorConf) > 1e-9 {
			t.Fatalf("%s: confidence changed after round-trip", kind)
		}
	}
}

func TestDescribeFinding(t *testing.T) {
	tab := engineTable(t, 3000, 82)
	tab.Set(0, 2, dataset.Nom((tab.Get(0, 0).NomIdx()+1)%3))
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.CheckRow(tab.Row(0))
	if rep.Best == nil {
		t.Fatalf("no finding")
	}
	desc := m.DescribeFinding(rep.Best)
	if !strings.Contains(desc, "GBM") || !strings.Contains(desc, "error confidence") {
		t.Fatalf("DescribeFinding = %q", desc)
	}
}

func TestCheckRowIgnoresBestWhenClean(t *testing.T) {
	tab := engineTable(t, 2000, 83)
	m, err := Induce(tab, Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.CheckRow(tab.Row(5))
	if rep.ErrorConf == 0 && rep.Best != nil {
		t.Fatalf("clean record must have nil Best")
	}
	if rep.Suspicious {
		t.Fatalf("clean record flagged")
	}
}
