package audit

import (
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// BenchmarkInduce and BenchmarkReinduceAttrs are the model-maintenance
// pair the CI bench job tracks alongside cmd/benchcore's induce/reinduce
// surfaces: a full induction over a drifted table versus an incremental
// re-induction of every modelled attribute from the previous model
// (frozen discretization, count-patched or warm-started classifiers).
// The committed contract — incremental at least 3x faster — is enforced
// by benchcore's reinduce gate check; these benchmarks make the same
// numbers visible in `go test -bench`.
func BenchmarkInduce(b *testing.B) {
	_, perturbed, _ := reinduceBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Induce(perturbed, Options{MinConfidence: 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReinduceAttrs(b *testing.B) {
	m, perturbed, dirty := reinduceBenchSetup(b)
	attrs := make([]int, len(m.Attrs))
	for i := range m.Attrs {
		attrs[i] = m.Attrs[i].Class
	}
	opts := ReinduceOptions{Mode: ReinduceIncremental, Prev: dirty}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReinduceAttrs(perturbed, attrs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// reinduceBenchSetup reuses the stream-bench fixture (model trained on
// dirty) and derives the perturbed table benchcore uses: the same clean
// sample polluted under a different seed, so it shares most rows with
// the training table but drifts in a few percent of cells.
func reinduceBenchSetup(b *testing.B) (m *Model, perturbed, dirty *dataset.Table) {
	b.Helper()
	m, dirty = streamBenchSetup(b, 50000)
	sample, err := quis.Generate(quis.Params{NumRecords: 50000, Seed: 2003})
	if err != nil {
		b.Fatal(err)
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	perturbed, _ = pollute.Run(sample.Data, plan, rand.New(rand.NewSource(43)))
	return m, perturbed, dirty
}
