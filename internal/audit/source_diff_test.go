package audit

import (
	"bytes"
	"database/sql"
	"database/sql/driver"
	"encoding/gob"
	"fmt"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/sqlmem"
)

// The ingestion-equivalence contract: a relation fed through any source —
// CSV text, JSONL objects, a database/sql result set — produces the
// byte-identical audit. The CSV path is the reference (it is what the
// columnar differential suite pins against the row-path oracle); JSONL
// and SQL must match it gob-byte-for-byte, batch and stream, across the
// same chunk-size × worker grid as columnar_diff_test.go.

// streamGobBytes serializes a StreamResult with the wall-time field
// zeroed, for byte-identity comparison.
func streamGobBytes(t *testing.T, res *StreamResult) []byte {
	t.Helper()
	cp := *res
	cp.CheckTime = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sqlQUISRows renders the table as driver rows: nominals and dates in
// their text form, numerics as native float64 — the mix a warehouse
// driver typically produces.
func sqlQUISRows(t *testing.T, tab *dataset.Table) [][]driver.Value {
	t.Helper()
	s := tab.Schema()
	rows := make([][]driver.Value, tab.NumRows())
	for r := range rows {
		row := make([]driver.Value, s.Len())
		for c, a := range s.Attrs() {
			v := tab.Get(r, c)
			switch {
			case v.IsNull():
				row[c] = nil
			case a.Type == dataset.NumericType:
				row[c] = v.Float()
			default:
				row[c] = a.Format(v)
			}
		}
		rows[r] = row
	}
	return rows
}

func TestSourceDifferentialQUIS(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fixture is expensive")
	}
	m, dirty := streamQUIS(t)

	var csvBuf, jsonlBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, dirty); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteJSONL(&jsonlBuf, dirty); err != nil {
		t.Fatal(err)
	}
	if err := sqlmem.RegisterTable("quis_diff", m.Schema.Names(), sqlQUISRows(t, dirty)); err != nil {
		t.Fatal(err)
	}
	defer sqlmem.DropTable("quis_diff")
	db, err := sql.Open("sqlmem", "diff")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	sources := []struct {
		name string
		open func(t *testing.T) dataset.RowSource
	}{
		{"csv", func(t *testing.T) dataset.RowSource {
			src, err := dataset.NewCSVSource(bytes.NewReader(csvBuf.Bytes()), m.Schema)
			if err != nil {
				t.Fatal(err)
			}
			return src
		}},
		{"jsonl", func(t *testing.T) dataset.RowSource {
			return dataset.NewJSONLSource(bytes.NewReader(jsonlBuf.Bytes()), m.Schema)
		}},
		{"sql", func(t *testing.T) dataset.RowSource {
			src, closer, err := dataset.OpenSQLSource(db, "SELECT * FROM quis_diff", m.Schema)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { closer.Close() })
			return src
		}},
	}

	// Batch: materialize each source with its source-assigned IDs and
	// audit the table. The CSV result is the reference.
	var wantBatch []byte
	for _, sc := range sources {
		tab, err := dataset.ReadAllKeepIDs(sc.open(t))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		got := gobBytes(t, m.AuditTable(tab))
		if sc.name == "csv" {
			wantBatch = got
			continue
		}
		if !bytes.Equal(wantBatch, got) {
			t.Fatalf("%s: batch Result is not gob-byte-identical to the CSV source", sc.name)
		}
	}

	// Stream: the full chunk-size × worker grid. Within one geometry the
	// fold order is deterministic, so equal inputs must produce equal
	// bytes — any divergence is a source-decoding difference.
	for _, chunk := range columnarChunkSizes {
		for _, workers := range columnarWorkerCounts {
			t.Run(fmt.Sprintf("chunk=%d,workers=%d", chunk, workers), func(t *testing.T) {
				opts := StreamOptions{ChunkSize: chunk, Workers: workers, TopK: -1}
				var want []byte
				for _, sc := range sources {
					res, err := m.AuditStream(sc.open(t), opts)
					if err != nil {
						t.Fatalf("%s: %v", sc.name, err)
					}
					got := streamGobBytes(t, res)
					if sc.name == "csv" {
						want = got
						continue
					}
					if !bytes.Equal(want, got) {
						t.Fatalf("%s: StreamResult is not gob-byte-identical to the CSV source", sc.name)
					}
				}
			})
		}
	}
}
