package audit

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// The re-induction differential suite. The count-maintained families
// (naive Bayes, kNN, 1R) promise an *exact* incremental path: the
// delta-updated successor must gob-serialize byte-for-byte like a
// frozen-state rebuild on the same sample — and, where no state is frozen
// (nominal class attributes under naive Bayes), like a from-scratch
// Induce on the new table. The warm-started families are covered by the
// quality-equivalence suite in reinduce_quality_test.go.

// reinduceFixture returns two pollutions of the same clean QUIS slice:
// the table the base model was induced on, and the "drifted" table a
// re-induction sees. They share most rows, so the Prev delta path has
// both matched and unmatched rows to chew on.
func reinduceFixture(t testing.TB, rows int) (prev, cur *dataset.Table) {
	t.Helper()
	sample, err := quis.Generate(quis.Params{NumRecords: 30000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	clean := dataset.NewTable(sample.Data.Schema())
	for r := 0; r < rows; r++ {
		clean.AppendRow(sample.Data.Row(r))
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	prev, _ = pollute.Run(clean, plan, rand.New(rand.NewSource(42)))
	cur, _ = pollute.Run(clean, plan, rand.New(rand.NewSource(43)))
	return prev, cur
}

// modelledAttrs lists every class attribute the model covers.
func modelledAttrs(m *Model) []int {
	attrs := make([]int, len(m.Attrs))
	for i, am := range m.Attrs {
		attrs[i] = am.Class
	}
	return attrs
}

// modelBytes gob-serializes a model with the wall-time field zeroed.
func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	cp := *m
	cp.InduceTime = 0
	var buf bytes.Buffer
	if err := Encode(&buf, &cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func attrModelBytes(t *testing.T, am *AttrModel) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(am); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReinduceDeltaMatchesReplacementExactFamilies: for the exact
// families, re-inducing with a row-level Prev delta and re-inducing with
// no delta (full replacement from the new sample, frozen state) must
// produce byte-identical successors — the delta bookkeeping adds and
// subtracts exactly what a rebuild recounts.
func TestReinduceDeltaMatchesReplacementExactFamilies(t *testing.T) {
	prev, cur := reinduceFixture(t, 1200)
	for _, kind := range []InducerKind{InducerNaiveBayes, InducerKNN, InducerOneR} {
		t.Run(string(kind), func(t *testing.T) {
			m, err := Induce(prev, Options{MinConfidence: 0.8, Inducer: kind})
			if err != nil {
				t.Fatal(err)
			}
			attrs := modelledAttrs(m)
			withDelta, err := m.ReinduceAttrs(cur, attrs, ReinduceOptions{Prev: prev})
			if err != nil {
				t.Fatal(err)
			}
			replaced, err := m.ReinduceAttrs(cur, attrs, ReinduceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(modelBytes(t, withDelta), modelBytes(t, replaced)) {
				t.Fatal("delta-updated successor is not byte-identical to the frozen-state rebuild")
			}
		})
	}
}

// TestReinduceNaiveBayesMatchesFullRetrain: naive Bayes freezes nothing
// for nominal class attributes (no discretizer, smoothing fixed), so the
// incremental successor must be byte-identical to a from-scratch Induce
// on the new table — attribute by attribute.
func TestReinduceNaiveBayesMatchesFullRetrain(t *testing.T) {
	prev, cur := reinduceFixture(t, 1200)
	opts := Options{MinConfidence: 0.8, Inducer: InducerNaiveBayes}
	m, err := Induce(prev, opts)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := m.ReinduceAttrs(cur, modelledAttrs(m), ReinduceOptions{Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Induce(cur, opts)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, am := range inc.Attrs {
		if am.Disc != nil {
			continue // numeric classes freeze the previous bins by design
		}
		want := fresh.attrModelFor(am.Class)
		if want == nil {
			t.Fatalf("attribute %d modelled incrementally but not by Induce", am.Class)
		}
		if !bytes.Equal(attrModelBytes(t, am), attrModelBytes(t, want)) {
			t.Errorf("attribute %s: incremental successor differs from full retrain", m.Schema.Attr(am.Class).Name)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("fixture has no nominal class attributes to compare")
	}
}

// TestReinduceSharesUntouchedAttrModels: a partial re-induction must
// share every untouched AttrModel pointer-for-pointer, replace the
// requested ones, and leave the receiver byte-identical to before.
func TestReinduceSharesUntouchedAttrModels(t *testing.T) {
	prev, cur := reinduceFixture(t, 800)
	m, err := Induce(prev, Options{MinConfidence: 0.8, Inducer: InducerNaiveBayes})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Attrs) < 2 {
		t.Fatal("fixture modelled fewer than two attributes")
	}
	before := modelBytes(t, m)
	target := m.Attrs[0].Class

	succ, err := m.ReinduceAttrs(cur, []int{target}, ReinduceOptions{Prev: prev})
	if err != nil {
		t.Fatal(err)
	}
	if succ.Attrs[0] == m.Attrs[0] {
		t.Error("re-induced attribute still shares the predecessor's AttrModel")
	}
	for i := 1; i < len(m.Attrs); i++ {
		if succ.Attrs[i] != m.Attrs[i] {
			t.Errorf("untouched attribute %d was not shared", m.Attrs[i].Class)
		}
	}
	if succ.TrainRows != cur.NumRows() {
		t.Errorf("successor TrainRows = %d, want %d", succ.TrainRows, cur.NumRows())
	}
	if !bytes.Equal(before, modelBytes(t, m)) {
		t.Error("ReinduceAttrs mutated the receiver")
	}
}

// TestReinduceFullModeRederivesBins: full mode must re-derive the
// discretizer from the new table instead of freezing the old bins, making
// it identical to what Induce would build for that attribute.
func TestReinduceFullModeRederivesBins(t *testing.T) {
	prev, cur := reinduceFixture(t, 800)
	opts := Options{MinConfidence: 0.8, Inducer: InducerNaiveBayes}
	m, err := Induce(prev, opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Induce(cur, opts)
	if err != nil {
		t.Fatal(err)
	}
	succ, err := m.ReinduceAttrs(cur, modelledAttrs(m), ReinduceOptions{Mode: ReinduceFull})
	if err != nil {
		t.Fatal(err)
	}
	for _, am := range succ.Attrs {
		want := fresh.attrModelFor(am.Class)
		if want == nil || !bytes.Equal(attrModelBytes(t, am), attrModelBytes(t, want)) {
			t.Errorf("attribute %s: full-mode re-induction differs from Induce", m.Schema.Attr(am.Class).Name)
		}
	}
}

// TestReinduceErrors: unmodelled attributes, unknown modes and schema
// drift must all fail loudly instead of silently producing a model that
// scores garbage.
func TestReinduceErrors(t *testing.T) {
	prev, cur := reinduceFixture(t, 600)
	m, err := Induce(prev, Options{MinConfidence: 0.8, Inducer: InducerNaiveBayes,
		SkipClasses: []string{"BRV"}})
	if err != nil {
		t.Fatal(err)
	}
	skipped := prev.Schema().Index("BRV")
	if _, err := m.ReinduceAttrs(cur, []int{skipped}, ReinduceOptions{}); err == nil {
		t.Error("re-inducing an unmodelled attribute did not fail")
	}
	if _, err := m.ReinduceAttrs(cur, modelledAttrs(m), ReinduceOptions{Mode: "sideways"}); err == nil {
		t.Error("unknown mode did not fail")
	}
	other, err := dataset.NewSchema(dataset.NewNominal("X", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReinduceAttrs(dataset.NewTable(other), modelledAttrs(m), ReinduceOptions{}); err == nil {
		t.Error("schema drift did not fail")
	}
}

// TestTableDiff pins the multiset semantics of the row diff: duplicates
// count, record IDs do not, and null/nominal/numeric values never collide.
func TestTableDiff(t *testing.T) {
	schema, err := dataset.NewSchema(
		dataset.NewNominal("n", "a", "b", "c"),
		dataset.NewNumeric("x", 0, 10),
	)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(rows ...[]dataset.Value) *dataset.Table {
		tab := dataset.NewTable(schema)
		for _, r := range rows {
			tab.AppendRow(r)
		}
		return tab
	}
	row := func(n int, x float64) []dataset.Value {
		return []dataset.Value{dataset.Nom(n), dataset.Num(x)}
	}
	nullRow := []dataset.Value{dataset.Null(), dataset.Null()}

	prev := mk(row(0, 1), row(0, 1), row(1, 2), nullRow)
	cur := mk(row(0, 1), row(1, 2), row(2, 3), row(2, 3), nullRow)

	added, removed := tableDiff(prev, cur)
	if added.NumRows() != 2 || removed.NumRows() != 1 {
		t.Fatalf("diff added %d removed %d rows, want 2 and 1", added.NumRows(), removed.NumRows())
	}
	if got := added.Get(0, 0); got.NomIdx() != 2 {
		t.Errorf("added row 0 = %v, want nominal c", got)
	}
	if got := removed.Get(0, 0); got.NomIdx() != 0 {
		t.Errorf("removed row 0 = %v, want the duplicate nominal a", got)
	}

	// Identical tables diff to nothing, whatever the record IDs are.
	shifted := mk(nullRow, row(1, 2), row(0, 1), row(0, 1))
	added, removed = tableDiff(prev, shifted)
	if added.NumRows() != 0 || removed.NumRows() != 0 {
		t.Fatalf("reordered identical tables diffed to +%d/-%d rows", added.NumRows(), removed.NumRows())
	}
}
