// Package benchutil holds the measurement plumbing shared by the
// benchmark commands (cmd/benchcore, cmd/benchstream): fail-loud JSON
// report writing and a sampled live-heap peak monitor.
package benchutil

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

// WriteJSON writes v as indented JSON to out ("-" for stdout),
// surfacing create, encode and close failures — a benchmark command must
// exit non-zero on a failed write so CI can never upload a stale or
// truncated artifact.
func WriteJSON(v any, out string) error {
	enc := func(w io.Writer) error {
		e := json.NewEncoder(w)
		e.SetIndent("", "  ")
		return e.Encode(v)
	}
	if out == "-" {
		return enc(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := enc(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", out, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", out, err)
	}
	return nil
}

// HeapMonitor samples the live heap until stopped and reports the max.
type HeapMonitor struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

// StartHeapMonitor begins sampling runtime.MemStats.HeapAlloc every 2ms.
func StartHeapMonitor() *HeapMonitor {
	mon := &HeapMonitor{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(mon.done)
		var ms runtime.MemStats
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-mon.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > mon.peak.Load() {
					mon.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return mon
}

// Stop ends sampling and returns the peak observed live heap in bytes.
func (mon *HeapMonitor) Stop() uint64 {
	close(mon.stop)
	<-mon.done
	return mon.peak.Load()
}
