// Package assoc implements Apriori association-rule mining with the
// confidence-sum deviation scoring of Hipp et al. [14], which the paper
// discusses as the closest related approach (§7): "use scalable algorithms
// for association rule induction and define a scoring that rates deviations
// from these rules based on the confidence of the violated rules".
//
// It serves as a comparison baseline in the algorithm-selection experiment
// (E7): unlike the multiple-classification approach, association rules
// "cannot directly model dependencies between numerical attributes" — here
// numeric attributes are equal-frequency discretized first, which is
// exactly the workaround the paper criticizes.
package assoc

import (
	"fmt"
	"sort"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Item is one attribute-value (or attribute-bucket) pair.
type Item struct {
	Attr int
	Val  int
}

// Rule is an association rule X → y with a single-item consequent.
type Rule struct {
	Antecedent []Item
	Consequent Item
	// Support is the fraction of records containing X ∪ {y}.
	Support float64
	// Confidence is support(X ∪ {y}) / support(X).
	Confidence float64
	// N is the absolute record count behind the antecedent.
	N float64
}

// Options configure mining.
type Options struct {
	// MinSupport is the minimal itemset support (default 0.05).
	MinSupport float64
	// MinConfidence is the minimal rule confidence (default 0.9).
	MinConfidence float64
	// MaxItemsetSize caps the Apriori levels (default 3).
	MaxItemsetSize int
	// Bins discretizes numeric/date attributes (default 5).
	Bins int
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 0.05
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.9
	}
	if o.MaxItemsetSize == 0 {
		o.MaxItemsetSize = 3
	}
	if o.Bins == 0 {
		o.Bins = 5
	}
	return o
}

// Model holds the mined rules and the discretizers needed to score rows.
type Model struct {
	Rules []Rule
	Disc  []*stats.Discretizer // per column; nil for nominal columns
}

// Mine runs Apriori over the table and derives single-consequent rules.
func Mine(tab *dataset.Table, opts Options) (*Model, error) {
	opts = opts.WithDefaults()
	schema := tab.Schema()
	n := tab.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("assoc: empty table")
	}

	model := &Model{Disc: make([]*stats.Discretizer, schema.Len())}
	for c := 0; c < schema.Len(); c++ {
		if schema.Attr(c).Type == dataset.NominalType {
			continue
		}
		var vals []float64
		for r := 0; r < n; r++ {
			if v := tab.Get(r, c); !v.IsNull() {
				vals = append(vals, v.Float())
			}
		}
		if len(vals) == 0 {
			continue
		}
		d, err := stats.NewEqualFrequency(vals, opts.Bins)
		if err != nil {
			return nil, err
		}
		model.Disc[c] = d
	}

	// Materialize item vectors (one item per column; -1 = null).
	feats := make([][]int, n)
	for r := 0; r < n; r++ {
		f := make([]int, schema.Len())
		for c := 0; c < schema.Len(); c++ {
			f[c] = model.itemValue(tab.Get(r, c), c)
		}
		feats[r] = f
	}

	minCount := opts.MinSupport * float64(n)

	// Level 1: frequent single items.
	type itemset []Item
	counts := make(map[Item]int)
	for _, f := range feats {
		for c, v := range f {
			if v >= 0 {
				counts[Item{Attr: c, Val: v}]++
			}
		}
	}
	var frequent []itemset
	supportOf := make(map[string]float64)
	for it, cnt := range counts {
		if float64(cnt) >= minCount {
			is := itemset{it}
			frequent = append(frequent, is)
			supportOf[keyOf(is)] = float64(cnt)
		}
	}
	sortItemsets(frequent)

	all := append([]itemset(nil), frequent...)
	level := frequent
	for size := 2; size <= opts.MaxItemsetSize && len(level) > 0; size++ {
		// Candidate generation: join sets sharing a (size-2)-prefix, one
		// item per attribute.
		candSet := make(map[string]itemset)
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !samePrefix(a, b) {
					continue
				}
				last := b[len(b)-1]
				if last.Attr == a[len(a)-1].Attr {
					continue // one item per attribute
				}
				cand := append(append(itemset{}, a...), last)
				sortItems(cand)
				candSet[keyOf(cand)] = cand
			}
		}
		// Count supports.
		candCounts := make(map[string]int, len(candSet))
		for _, f := range feats {
			for key, cand := range candSet {
				if containsAll(f, cand) {
					candCounts[key]++
				}
			}
		}
		level = level[:0]
		for key, cand := range candSet {
			if float64(candCounts[key]) >= minCount {
				level = append(level, cand)
				supportOf[key] = float64(candCounts[key])
			}
		}
		sortItemsets(level)
		all = append(all, level...)
	}

	// Rule derivation: for each frequent itemset of size >= 2, split off
	// each single item as the consequent.
	for _, is := range all {
		if len(is) < 2 {
			continue
		}
		full := supportOf[keyOf(is)]
		for i := range is {
			ante := make(itemset, 0, len(is)-1)
			ante = append(ante, is[:i]...)
			ante = append(ante, is[i+1:]...)
			anteSup, ok := supportOf[keyOf(ante)]
			if !ok || anteSup <= 0 {
				continue
			}
			conf := full / anteSup
			if conf < opts.MinConfidence {
				continue
			}
			model.Rules = append(model.Rules, Rule{
				Antecedent: append([]Item(nil), ante...),
				Consequent: is[i],
				Support:    full / float64(n),
				Confidence: conf,
				N:          anteSup,
			})
		}
	}
	sort.Slice(model.Rules, func(i, j int) bool { return model.Rules[i].Confidence > model.Rules[j].Confidence })
	return model, nil
}

// itemValue maps a cell to its item value (-1 for null).
func (m *Model) itemValue(v dataset.Value, col int) int {
	if v.IsNull() {
		return -1
	}
	if m.Disc[col] != nil {
		return m.Disc[col].Bin(v.Float())
	}
	if v.IsNominal() {
		return v.NomIdx()
	}
	return -1
}

// Score implements the Hipp scoring: the sum of confidences of all rules
// the record violates (antecedent matches, consequent does not).
func (m *Model) Score(row []dataset.Value) float64 {
	feats := make([]int, len(m.Disc))
	for c := range feats {
		feats[c] = m.itemValue(row[c], c)
	}
	score := 0.0
	for i := range m.Rules {
		r := &m.Rules[i]
		matched := true
		for _, it := range r.Antecedent {
			if feats[it.Attr] != it.Val {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		if feats[r.Consequent.Attr] != r.Consequent.Val {
			score += r.Confidence
		}
	}
	return score
}

func keyOf(is []Item) string {
	b := make([]byte, 0, len(is)*8)
	for _, it := range is {
		b = append(b, byte(it.Attr), byte(it.Attr>>8), byte(it.Val), byte(it.Val>>8))
	}
	return string(b)
}

func sortItems(is []Item) {
	sort.Slice(is, func(a, b int) bool {
		if is[a].Attr != is[b].Attr {
			return is[a].Attr < is[b].Attr
		}
		return is[a].Val < is[b].Val
	})
}

func sortItemsets[T ~[]Item](sets []T) {
	sort.Slice(sets, func(a, b int) bool { return keyOf(sets[a]) < keyOf(sets[b]) })
}

func samePrefix(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsAll(feats []int, is []Item) bool {
	for _, it := range is {
		if feats[it.Attr] != it.Val {
			return false
		}
	}
	return true
}
