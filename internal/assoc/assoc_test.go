package assoc

import (
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
)

func assocSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("a", "a0", "a1"),
		dataset.NewNominal("b", "b0", "b1"),
		dataset.NewNumeric("x", 0, 100),
	)
}

// dependentTable: a=a0 -> b=b0 always; x random.
func dependentTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(assocSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := a // perfect dependency both ways
		tab.AppendRow([]dataset.Value{dataset.Nom(a), dataset.Nom(b), dataset.Num(rng.Float64() * 100)})
	}
	return tab
}

func TestMineFindsDependency(t *testing.T) {
	tab := dependentTable(t, 1000, 61)
	model, err := Mine(tab, Options{MinSupport: 0.1, MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range model.Rules {
		if len(r.Antecedent) == 1 &&
			r.Antecedent[0] == (Item{Attr: 0, Val: 0}) &&
			r.Consequent == (Item{Attr: 1, Val: 0}) {
			found = true
			if r.Confidence < 0.999 {
				t.Fatalf("perfect dependency confidence = %g", r.Confidence)
			}
		}
	}
	if !found {
		t.Fatalf("a0 -> b0 not mined; got %d rules", len(model.Rules))
	}
}

func TestScoreFlagsViolation(t *testing.T) {
	tab := dependentTable(t, 1000, 62)
	model, err := Mine(tab, Options{MinSupport: 0.1, MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	clean := []dataset.Value{dataset.Nom(0), dataset.Nom(0), dataset.Num(50)}
	dirty := []dataset.Value{dataset.Nom(0), dataset.Nom(1), dataset.Num(50)}
	if s := model.Score(clean); s != 0 {
		t.Fatalf("clean record scored %g", s)
	}
	if s := model.Score(dirty); s <= 0 {
		t.Fatalf("violating record scored %g", s)
	}
}

func TestMineRespectsSupportThreshold(t *testing.T) {
	tab := dependentTable(t, 1000, 63)
	// Absurd support threshold: no rules.
	model, err := Mine(tab, Options{MinSupport: 0.99, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Rules) != 0 {
		t.Fatalf("expected no rules at 99%% support, got %d", len(model.Rules))
	}
}

func TestMineEmptyTableFails(t *testing.T) {
	tab := dataset.NewTable(assocSchema(t))
	if _, err := Mine(tab, Options{}); err == nil {
		t.Fatalf("empty table must fail")
	}
}

func TestNumericDiscretization(t *testing.T) {
	// x < 50   <->  a = a0 (via bins).
	tab := dataset.NewTable(assocSchema(t))
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 1000; i++ {
		a := rng.Intn(2)
		x := rng.Float64() * 49
		if a == 1 {
			x = 51 + rng.Float64()*49
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(a), dataset.Nom(rng.Intn(2)), dataset.Num(x)})
	}
	model, err := Mine(tab, Options{MinSupport: 0.05, MinConfidence: 0.9, Bins: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Some rule must link attribute 0 and the discretized attribute 2.
	found := false
	for _, r := range model.Rules {
		attrs := map[int]bool{r.Consequent.Attr: true}
		for _, it := range r.Antecedent {
			attrs[it.Attr] = true
		}
		if attrs[0] && attrs[2] {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rule linking the nominal and the discretized numeric attribute")
	}
	// Scoring must treat a mismatched bucket as a violation.
	bad := []dataset.Value{dataset.Nom(0), dataset.Nom(0), dataset.Num(99)}
	good := []dataset.Value{dataset.Nom(0), dataset.Nom(0), dataset.Num(10)}
	if model.Score(bad) <= model.Score(good) {
		t.Fatalf("bucket violation not penalized: bad=%g good=%g", model.Score(bad), model.Score(good))
	}
}

func TestRuleMetricsSane(t *testing.T) {
	tab := dependentTable(t, 500, 65)
	model, err := Mine(tab, Options{MinSupport: 0.05, MinConfidence: 0.5, MaxItemsetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Rules) == 0 {
		t.Fatalf("no rules")
	}
	for _, r := range model.Rules {
		if r.Confidence < 0.5 || r.Confidence > 1+1e-9 {
			t.Fatalf("confidence out of range: %g", r.Confidence)
		}
		if r.Support <= 0 || r.Support > 1 {
			t.Fatalf("support out of range: %g", r.Support)
		}
		if r.N <= 0 || math.IsNaN(r.N) {
			t.Fatalf("bad N: %g", r.N)
		}
	}
	// Rules sorted by confidence descending.
	for i := 1; i < len(model.Rules); i++ {
		if model.Rules[i].Confidence > model.Rules[i-1].Confidence+1e-12 {
			t.Fatalf("rules not sorted by confidence")
		}
	}
}

// TestConsequentsMarkDeterminedAttrs pins the property dedup key discovery
// depends on: attributes functionally determined by another attribute show
// up as rule consequents, while a high-selectivity identifier never does
// (its values stay below any sensible support threshold).
func TestConsequentsMarkDeterminedAttrs(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.NewNumeric("id", 0, 1e6),
		dataset.NewNominal("region", "n", "s", "e", "w"),
		dataset.NewNominal("regcode", "N", "S", "E", "W"),
	)
	tab := dataset.NewTable(schema)
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 1200; i++ {
		region := rng.Intn(4)
		tab.AppendRow([]dataset.Value{
			dataset.Num(float64(i)),
			dataset.Nom(region),
			dataset.Nom(region),
		})
	}
	model, err := Mine(tab, Options{}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	consequents := map[int]bool{}
	for _, r := range model.Rules {
		consequents[r.Consequent.Attr] = true
		if r.Consequent.Attr == 1 || r.Consequent.Attr == 2 {
			if r.Confidence < 0.999 {
				t.Fatalf("mutual determination rule with confidence %g", r.Confidence)
			}
		}
	}
	if !consequents[1] || !consequents[2] {
		t.Fatalf("region/regcode not marked as determined; consequents = %v", consequents)
	}
	if consequents[0] {
		t.Fatalf("unique identifier mined as a rule consequent")
	}
}

// TestWithDefaults pins the defaulting used when callers pass a zero
// Options (the dedup key-discovery path does exactly that).
func TestWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.MinSupport <= 0 || o.MinConfidence <= 0 || o.MaxItemsetSize < 2 || o.Bins < 2 {
		t.Fatalf("zero options not defaulted: %+v", o)
	}
	custom := Options{MinSupport: 0.2, MinConfidence: 0.7, MaxItemsetSize: 2, Bins: 3}
	if got := custom.WithDefaults(); got != custom {
		t.Fatalf("explicit options rewritten: %+v", got)
	}
}
