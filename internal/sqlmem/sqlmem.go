// Package sqlmem is a minimal in-memory database/sql driver, registered
// under the name "sqlmem". It exists so the SQL ingestion path can be
// exercised end to end — database/sql connection pooling, driver-value
// coercion, NULL handling — without any external database or driver
// dependency. It is intentionally not a SQL engine: a query must be of
// the form "SELECT * FROM <table>" against a table previously registered
// with RegisterTable.
package sqlmem

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"sync"
)

func init() {
	sql.Register("sqlmem", &memDriver{})
}

var (
	mu     sync.RWMutex
	tables = map[string]*memTable{}
)

type memTable struct {
	cols []string
	rows [][]driver.Value
}

// RegisterTable installs (or replaces) a named in-memory table. Row
// values must be driver.Value kinds: int64, float64, bool, []byte,
// string, time.Time, or nil. The slices are retained; do not mutate them
// after registration.
func RegisterTable(name string, cols []string, rows [][]driver.Value) error {
	for i, row := range rows {
		if len(row) != len(cols) {
			return fmt.Errorf("sqlmem: row %d has %d values for %d columns", i, len(row), len(cols))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	tables[name] = &memTable{cols: cols, rows: rows}
	return nil
}

// DropTable removes a registered table (tests use it for cleanup).
func DropTable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(tables, name)
}

type memDriver struct{}

// Open implements driver.Driver; every DSN shares the global registry.
func (*memDriver) Open(string) (driver.Conn, error) { return &memConn{}, nil }

type memConn struct{}

func (*memConn) Prepare(query string) (driver.Stmt, error) { return &memStmt{query: query}, nil }
func (*memConn) Close() error                              { return nil }
func (*memConn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqlmem: transactions are not supported")
}

type memStmt struct{ query string }

func (*memStmt) Close() error  { return nil }
func (*memStmt) NumInput() int { return 0 }
func (*memStmt) Exec([]driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("sqlmem: only queries are supported")
}

func (s *memStmt) Query([]driver.Value) (driver.Rows, error) {
	name, err := tableName(s.query)
	if err != nil {
		return nil, err
	}
	mu.RLock()
	t := tables[name]
	mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("sqlmem: no table %q registered", name)
	}
	return &memRows{t: t}, nil
}

// tableName parses the one supported statement shape.
func tableName(query string) (string, error) {
	fields := strings.Fields(strings.TrimSuffix(strings.TrimSpace(query), ";"))
	if len(fields) == 4 && strings.EqualFold(fields[0], "SELECT") && fields[1] == "*" && strings.EqualFold(fields[2], "FROM") {
		return fields[3], nil
	}
	return "", fmt.Errorf("sqlmem: unsupported query %q (want \"SELECT * FROM <table>\")", query)
}

type memRows struct {
	t    *memTable
	next int
}

func (r *memRows) Columns() []string { return r.t.cols }
func (r *memRows) Close() error      { return nil }

func (r *memRows) Next(dest []driver.Value) error {
	if r.next >= len(r.t.rows) {
		return io.EOF
	}
	copy(dest, r.t.rows[r.next])
	r.next++
	return nil
}
