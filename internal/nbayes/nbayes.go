// Package nbayes implements a naive Bayes classifier — one of the
// alternatives evaluated for the QUIS domain in §5 of the paper
// ("instance based classifiers, naive Bayes classifiers, classification
// rule inducers, and decision trees"). Nominal base attributes use
// Laplace-smoothed frequency estimates; numeric and date attributes use
// per-class Gaussians.
package nbayes

import (
	"fmt"
	"math"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// Options configure training.
type Options struct {
	// Laplace is the additive smoothing constant (default 1).
	Laplace float64
}

// Trainer induces naive Bayes models.
type Trainer struct {
	Opts Options
}

var _ mlcore.Trainer = (*Trainer)(nil)

// Name implements mlcore.Trainer.
func (t *Trainer) Name() string { return "naive-bayes" }

// nominalModel holds P(value | class) estimates for one attribute.
type nominalModel struct {
	Attr int
	// Cond[class][value] is the smoothed conditional probability, derived
	// from Counts by refit.
	Cond [][]float64
	// Counts[class][value] is the raw weighted value tally — the
	// sufficient statistic the incremental update maintains.
	Counts [][]float64
}

// gaussModel holds per-class Gaussians for one numeric attribute.
type gaussModel struct {
	Attr        int
	Mu, Sigma   []float64
	SeenByClass []bool
	// Sum, SumSq and W are the per-class raw moments Mu/Sigma derive
	// from. Update re-accumulates them from the full post-delta set (a
	// float-sum is not exact under subtraction), in Train's row order so
	// the result stays bit-identical to a retrain.
	Sum, SumSq, W []float64
}

// Model is the trained classifier.
type Model struct {
	K        int
	Priors   []float64
	TotalW   float64
	Nominals []nominalModel
	Gauss    []gaussModel
	// Laplace and ClassW freeze the training parameters and raw class
	// tallies so Update can rebuild the derived estimates without the
	// trainer. Models gob-decoded from before these fields existed carry
	// zero values; Update detects that and reports that a full retrain is
	// required.
	Laplace float64
	ClassW  []float64

	// batch holds the lazily built columnar log tables (see batch.go);
	// unexported, so gob-encoded models round-trip without it and rebuild
	// on first block prediction.
	batch batchState
}

var _ mlcore.Classifier = (*Model)(nil)
var _ mlcore.IncrementalClassifier = (*Model)(nil)

// Train implements mlcore.Trainer.
func (t *Trainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	laplace := t.Opts.Laplace
	if laplace == 0 {
		laplace = 1
	}
	return train(ins, laplace)
}

// train builds the model with a resolved smoothing constant.
func train(ins *mlcore.Instances, laplace float64) (mlcore.Classifier, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	schema := ins.Table.Schema()
	m := &Model{K: ins.K, Laplace: laplace, ClassW: make([]float64, ins.K)}

	for i, r := range ins.Rows {
		if c := ins.Class[r]; c >= 0 {
			m.ClassW[c] += ins.Weights[i]
			m.TotalW += ins.Weights[i]
		}
	}
	if m.TotalW <= 0 {
		return nil, fmt.Errorf("nbayes: no instances with a known class value")
	}

	for _, attr := range ins.Base {
		a := schema.Attr(attr)
		if a.Type == dataset.NominalType {
			nm := nominalModel{Attr: attr, Counts: make([][]float64, ins.K)}
			for c := range nm.Counts {
				nm.Counts[c] = make([]float64, a.NumValues())
			}
			for i, r := range ins.Rows {
				c := ins.Class[r]
				if c < 0 {
					continue
				}
				v := ins.Table.Get(r, attr)
				if v.IsNull() {
					continue
				}
				nm.Counts[c][v.NomIdx()] += ins.Weights[i]
			}
			m.Nominals = append(m.Nominals, nm)
			continue
		}
		gm := gaussModel{Attr: attr, Sum: make([]float64, ins.K), SumSq: make([]float64, ins.K), W: make([]float64, ins.K)}
		accumGauss(&gm, ins)
		m.Gauss = append(m.Gauss, gm)
	}
	m.refit()
	return m, nil
}

// accumGauss adds the instance set's raw moments for gm's attribute into
// gm.Sum/SumSq/W, iterating rows in order — Update re-accumulates with
// the same loop so its sums are bit-identical to a retrain's.
func accumGauss(gm *gaussModel, ins *mlcore.Instances) {
	for i, r := range ins.Rows {
		c := ins.Class[r]
		if c < 0 {
			continue
		}
		v := ins.Table.Get(r, gm.Attr)
		if v.IsNull() {
			continue
		}
		x := v.Float()
		gm.Sum[c] += x * ins.Weights[i]
		gm.SumSq[c] += x * x * ins.Weights[i]
		gm.W[c] += ins.Weights[i]
	}
}

// refit recomputes every derived estimate (Priors, Cond, Mu/Sigma) from
// the raw tallies, with formulas identical to the original single-pass
// training code so a refit of untouched tallies is bit-identical.
func (m *Model) refit() {
	m.Priors = make([]float64, m.K)
	for c := range m.Priors {
		m.Priors[c] = (m.ClassW[c] + m.Laplace) / (m.TotalW + m.Laplace*float64(m.K))
	}
	for i := range m.Nominals {
		nm := &m.Nominals[i]
		nm.Cond = make([][]float64, m.K)
		for c := range nm.Counts {
			total := 0.0
			for _, w := range nm.Counts[c] {
				total += w
			}
			numVals := float64(len(nm.Counts[c]))
			nm.Cond[c] = make([]float64, len(nm.Counts[c]))
			for vIdx, w := range nm.Counts[c] {
				nm.Cond[c][vIdx] = (w + m.Laplace) / (total + m.Laplace*numVals)
			}
		}
	}
	for i := range m.Gauss {
		gm := &m.Gauss[i]
		gm.Mu = make([]float64, m.K)
		gm.Sigma = make([]float64, m.K)
		gm.SeenByClass = make([]bool, m.K)
		for c := 0; c < m.K; c++ {
			if gm.W[c] <= 0 {
				continue
			}
			gm.SeenByClass[c] = true
			gm.Mu[c] = gm.Sum[c] / gm.W[c]
			variance := gm.SumSq[c]/gm.W[c] - gm.Mu[c]*gm.Mu[c]
			if variance < 1e-9 {
				variance = 1e-9
			}
			gm.Sigma[c] = math.Sqrt(variance)
		}
	}
}

// Update implements mlcore.IncrementalClassifier: nominal value tallies
// and class weights are weight-1-exact under add/subtract, so the delta
// is applied directly; Gaussian moments are re-accumulated from the full
// post-delta set in Train's row order. The successor is therefore
// gob-byte-identical to a full retrain (for integer instance weights).
// The trainer argument is unused — the smoothing constant is frozen in
// the model.
func (m *Model) Update(_ mlcore.Trainer, d mlcore.UpdateDelta) (mlcore.Classifier, error) {
	if m.ClassW == nil || m.Laplace == 0 {
		return nil, fmt.Errorf("nbayes: model predates raw tallies (old gob); full retrain required")
	}
	if d.Full == nil {
		return nil, fmt.Errorf("nbayes: update requires the full post-delta instance set")
	}
	if d.Added == nil && d.Removed == nil {
		// Full replacement: rebuild every tally from Full with the frozen
		// smoothing constant — the same code path as a retrain, so the
		// successor is bit-identical to one.
		return train(d.Full, m.Laplace)
	}
	n := &Model{
		K:       m.K,
		Laplace: m.Laplace,
		TotalW:  m.TotalW,
		ClassW:  append([]float64(nil), m.ClassW...),
	}
	n.Nominals = make([]nominalModel, len(m.Nominals))
	for i, nm := range m.Nominals {
		counts := make([][]float64, len(nm.Counts))
		for c := range nm.Counts {
			counts[c] = append([]float64(nil), nm.Counts[c]...)
		}
		n.Nominals[i] = nominalModel{Attr: nm.Attr, Counts: counts}
	}
	n.Gauss = make([]gaussModel, len(m.Gauss))
	for i, gm := range m.Gauss {
		n.Gauss[i] = gaussModel{
			Attr:  gm.Attr,
			Sum:   make([]float64, m.K),
			SumSq: make([]float64, m.K),
			W:     make([]float64, m.K),
		}
	}

	apply := func(ins *mlcore.Instances, sign float64) {
		if ins == nil {
			return
		}
		for i, r := range ins.Rows {
			c := ins.Class[r]
			if c < 0 {
				continue
			}
			w := sign * ins.Weights[i]
			n.ClassW[c] += w
			n.TotalW += w
			for j := range n.Nominals {
				nm := &n.Nominals[j]
				v := ins.Table.Get(r, nm.Attr)
				if v.IsNull() {
					continue
				}
				if idx := v.NomIdx(); idx < len(nm.Counts[c]) {
					nm.Counts[c][idx] += w
				}
			}
		}
	}
	apply(d.Removed, -1)
	apply(d.Added, +1)
	if n.TotalW <= 0 {
		return nil, fmt.Errorf("nbayes: no instances with a known class value after update")
	}
	for i := range n.Gauss {
		accumGauss(&n.Gauss[i], d.Full)
	}
	n.refit()
	return n, nil
}

// Predict implements mlcore.Classifier. The returned distribution's support
// is the full training weight: naive Bayes bases every prediction on the
// entire training set.
func (m *Model) Predict(row []dataset.Value) mlcore.Distribution {
	var d mlcore.Distribution
	m.PredictInto(row, &d)
	return d
}

// PredictInto implements mlcore.Classifier without allocating: the
// caller's buffer doubles as the log-probability workspace, which is then
// normalized in place.
func (m *Model) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	d.Reset(m.K)
	logp := d.Counts
	for c := range logp {
		logp[c] = math.Log(m.Priors[c])
	}
	for _, nm := range m.Nominals {
		v := row[nm.Attr]
		if v.IsNull() || !v.IsNominal() {
			continue
		}
		idx := v.NomIdx()
		for c := range logp {
			if idx < len(nm.Cond[c]) {
				logp[c] += math.Log(nm.Cond[c][idx])
			}
		}
	}
	for _, gm := range m.Gauss {
		v := row[gm.Attr]
		if v.IsNull() || !v.IsNumber() {
			continue
		}
		x := v.Float()
		for c := range logp {
			if gm.SeenByClass[c] {
				logp[c] += math.Log(stats.GaussianPDF(x, gm.Mu[c], gm.Sigma[c]) + 1e-300)
			}
		}
	}
	// Normalize in log space.
	maxLog := math.Inf(-1)
	for _, lp := range logp {
		if lp > maxLog {
			maxLog = lp
		}
	}
	total := 0.0
	for c, lp := range logp {
		p := math.Exp(lp - maxLog)
		d.Counts[c] = p
		total += p
	}
	if total > 0 {
		for c := range d.Counts {
			d.Counts[c] = d.Counts[c] / total * m.TotalW
		}
	}
	d.Total = m.TotalW
}
