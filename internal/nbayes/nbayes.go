// Package nbayes implements a naive Bayes classifier — one of the
// alternatives evaluated for the QUIS domain in §5 of the paper
// ("instance based classifiers, naive Bayes classifiers, classification
// rule inducers, and decision trees"). Nominal base attributes use
// Laplace-smoothed frequency estimates; numeric and date attributes use
// per-class Gaussians.
package nbayes

import (
	"fmt"
	"math"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// Options configure training.
type Options struct {
	// Laplace is the additive smoothing constant (default 1).
	Laplace float64
}

// Trainer induces naive Bayes models.
type Trainer struct {
	Opts Options
}

var _ mlcore.Trainer = (*Trainer)(nil)

// Name implements mlcore.Trainer.
func (t *Trainer) Name() string { return "naive-bayes" }

// nominalModel holds P(value | class) estimates for one attribute.
type nominalModel struct {
	Attr int
	// Cond[class][value] is the smoothed conditional probability.
	Cond [][]float64
}

// gaussModel holds per-class Gaussians for one numeric attribute.
type gaussModel struct {
	Attr        int
	Mu, Sigma   []float64
	SeenByClass []bool
}

// Model is the trained classifier.
type Model struct {
	K        int
	Priors   []float64
	TotalW   float64
	Nominals []nominalModel
	Gauss    []gaussModel

	// batch holds the lazily built columnar log tables (see batch.go);
	// unexported, so gob-encoded models round-trip without it and rebuild
	// on first block prediction.
	batch batchState
}

var _ mlcore.Classifier = (*Model)(nil)

// Train implements mlcore.Trainer.
func (t *Trainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	laplace := t.Opts.Laplace
	if laplace == 0 {
		laplace = 1
	}
	schema := ins.Table.Schema()
	m := &Model{K: ins.K, Priors: make([]float64, ins.K)}

	classW := make([]float64, ins.K)
	for i, r := range ins.Rows {
		if c := ins.Class[r]; c >= 0 {
			classW[c] += ins.Weights[i]
			m.TotalW += ins.Weights[i]
		}
	}
	if m.TotalW <= 0 {
		return nil, fmt.Errorf("nbayes: no instances with a known class value")
	}
	for c := range m.Priors {
		m.Priors[c] = (classW[c] + laplace) / (m.TotalW + laplace*float64(ins.K))
	}

	for _, attr := range ins.Base {
		a := schema.Attr(attr)
		if a.Type == dataset.NominalType {
			nm := nominalModel{Attr: attr, Cond: make([][]float64, ins.K)}
			counts := make([][]float64, ins.K)
			for c := range counts {
				counts[c] = make([]float64, a.NumValues())
			}
			for i, r := range ins.Rows {
				c := ins.Class[r]
				if c < 0 {
					continue
				}
				v := ins.Table.Get(r, attr)
				if v.IsNull() {
					continue
				}
				counts[c][v.NomIdx()] += ins.Weights[i]
			}
			for c := range counts {
				total := 0.0
				for _, w := range counts[c] {
					total += w
				}
				nm.Cond[c] = make([]float64, a.NumValues())
				for vIdx, w := range counts[c] {
					nm.Cond[c][vIdx] = (w + laplace) / (total + laplace*float64(a.NumValues()))
				}
			}
			m.Nominals = append(m.Nominals, nm)
			continue
		}
		gm := gaussModel{Attr: attr, Mu: make([]float64, ins.K), Sigma: make([]float64, ins.K), SeenByClass: make([]bool, ins.K)}
		sum := make([]float64, ins.K)
		sumSq := make([]float64, ins.K)
		w := make([]float64, ins.K)
		for i, r := range ins.Rows {
			c := ins.Class[r]
			if c < 0 {
				continue
			}
			v := ins.Table.Get(r, attr)
			if v.IsNull() {
				continue
			}
			x := v.Float()
			sum[c] += x * ins.Weights[i]
			sumSq[c] += x * x * ins.Weights[i]
			w[c] += ins.Weights[i]
		}
		for c := 0; c < ins.K; c++ {
			if w[c] <= 0 {
				continue
			}
			gm.SeenByClass[c] = true
			gm.Mu[c] = sum[c] / w[c]
			variance := sumSq[c]/w[c] - gm.Mu[c]*gm.Mu[c]
			if variance < 1e-9 {
				variance = 1e-9
			}
			gm.Sigma[c] = math.Sqrt(variance)
		}
		m.Gauss = append(m.Gauss, gm)
	}
	return m, nil
}

// Predict implements mlcore.Classifier. The returned distribution's support
// is the full training weight: naive Bayes bases every prediction on the
// entire training set.
func (m *Model) Predict(row []dataset.Value) mlcore.Distribution {
	var d mlcore.Distribution
	m.PredictInto(row, &d)
	return d
}

// PredictInto implements mlcore.Classifier without allocating: the
// caller's buffer doubles as the log-probability workspace, which is then
// normalized in place.
func (m *Model) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	d.Reset(m.K)
	logp := d.Counts
	for c := range logp {
		logp[c] = math.Log(m.Priors[c])
	}
	for _, nm := range m.Nominals {
		v := row[nm.Attr]
		if v.IsNull() || !v.IsNominal() {
			continue
		}
		idx := v.NomIdx()
		for c := range logp {
			if idx < len(nm.Cond[c]) {
				logp[c] += math.Log(nm.Cond[c][idx])
			}
		}
	}
	for _, gm := range m.Gauss {
		v := row[gm.Attr]
		if v.IsNull() || !v.IsNumber() {
			continue
		}
		x := v.Float()
		for c := range logp {
			if gm.SeenByClass[c] {
				logp[c] += math.Log(stats.GaussianPDF(x, gm.Mu[c], gm.Sigma[c]) + 1e-300)
			}
		}
	}
	// Normalize in log space.
	maxLog := math.Inf(-1)
	for _, lp := range logp {
		if lp > maxLog {
			maxLog = lp
		}
	}
	total := 0.0
	for c, lp := range logp {
		p := math.Exp(lp - maxLog)
		d.Counts[c] = p
		total += p
	}
	if total > 0 {
		for c := range d.Counts {
			d.Counts[c] = d.Counts[c] / total * m.TotalW
		}
	}
	d.Total = m.TotalW
}
