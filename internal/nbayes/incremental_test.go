package nbayes_test

import (
	"testing"

	"dataaudit/internal/mlcore/conform"
	"dataaudit/internal/nbayes"
)

// TestIncrementalConformance holds the naive-Bayes Update to the
// IncrementalClassifier contract: copy-on-write, and a successor
// gob-byte-identical to a full retrain (count tallies are exact under
// add/subtract; Gaussian moments are re-accumulated in training order).
func TestIncrementalConformance(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 1)
	conform.Run(t, conform.Config{Trainer: &nbayes.Trainer{}, Exact: true}, base, delta)
}
