package nbayes

import (
	"math"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// TestPredictBlockIntoMatchesRowPath holds the columnar kernel to its
// contract: every distribution in the block comes out bit-identical to
// the per-row PredictInto — including rows with nulls and an all-null
// row, across chunk boundaries that straddle the null-bitmap word size.
func TestPredictBlockIntoMatchesRowPath(t *testing.T) {
	tab := mixedTable(t, 2000, 47)
	// Sprinkle nulls the generator does not produce.
	for r := 0; r < tab.NumRows(); r += 17 {
		tab.Set(r, 0, dataset.Null())
	}
	for r := 0; r < tab.NumRows(); r += 23 {
		tab.Set(r, 1, dataset.Null())
	}
	for r := 0; r < tab.NumRows(); r += 311 {
		tab.Set(r, 0, dataset.Null())
		tab.Set(r, 1, dataset.Null())
	}
	clf, err := (&Trainer{}).Train(nbInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	m := clf.(*Model)

	ck := dataset.NewColumnChunk(tab.Schema())
	row := make([]dataset.Value, tab.NumCols())
	var want mlcore.Distribution
	for _, chunkRows := range []int{2000, 64, 7} {
		var dists []mlcore.Distribution
		for lo := 0; lo < tab.NumRows(); lo += chunkRows {
			hi := min(lo+chunkRows, tab.NumRows())
			tab.ChunkInto(ck, lo, hi)
			n := ck.Rows()
			for len(dists) < n {
				dists = append(dists, mlcore.Distribution{})
			}
			m.PredictBlockInto(ck, dists[:n])
			for r := 0; r < n; r++ {
				tab.RowInto(lo+r, row)
				m.PredictInto(row, &want)
				got := &dists[r]
				if math.Float64bits(want.Total) != math.Float64bits(got.Total) {
					t.Fatalf("chunk=%d row %d: support %v vs %v", chunkRows, lo+r, want.Total, got.Total)
				}
				if len(want.Counts) != len(got.Counts) {
					t.Fatalf("chunk=%d row %d: arity %d vs %d", chunkRows, lo+r, len(want.Counts), len(got.Counts))
				}
				for c := range want.Counts {
					if math.Float64bits(want.Counts[c]) != math.Float64bits(got.Counts[c]) {
						t.Fatalf("chunk=%d row %d class %d: %v (row path) vs %v (block)",
							chunkRows, lo+r, c, want.Counts[c], got.Counts[c])
					}
				}
			}
		}
	}
}
