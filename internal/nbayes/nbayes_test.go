package nbayes

import (
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

func nbSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("f1", "x", "y"),
		dataset.NewNumeric("f2", 0, 100),
		dataset.NewNominal("class", "c0", "c1"),
	)
}

func nbInstances(t testing.TB, tab *dataset.Table) *mlcore.Instances {
	t.Helper()
	return mlcore.NewInstances(tab, []int{0, 1}, 2, func(r int) int {
		v := tab.Get(r, 2)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
}

// mixedTable: class 0 -> f1=x mostly, f2 ~ N(20, 5); class 1 -> f1=y
// mostly, f2 ~ N(80, 5).
func mixedTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(nbSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		f1 := c
		if rng.Float64() < 0.1 {
			f1 = 1 - f1
		}
		mu := 20.0
		if c == 1 {
			mu = 80
		}
		x := mu + rng.NormFloat64()*5
		if x < 0 {
			x = 0
		}
		if x > 100 {
			x = 100
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(f1), dataset.Num(x), dataset.Nom(c)})
	}
	return tab
}

func TestNaiveBayesLearnsMixedFeatures(t *testing.T) {
	tab := mixedTable(t, 2000, 31)
	model, err := (&Trainer{}).Train(nbInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for r := 0; r < tab.NumRows(); r++ {
		d := model.Predict(tab.Row(r))
		best, _ := d.Best()
		if best == tab.Get(r, 2).NomIdx() {
			correct++
		}
	}
	if acc := float64(correct) / float64(tab.NumRows()); acc < 0.95 {
		t.Fatalf("accuracy = %g", acc)
	}
}

func TestNaiveBayesSupportIsTrainingWeight(t *testing.T) {
	tab := mixedTable(t, 500, 32)
	model, err := (&Trainer{}).Train(nbInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	d := model.Predict(tab.Row(0))
	if math.Abs(d.N()-500) > 1e-9 {
		t.Fatalf("support = %g, want 500", d.N())
	}
	sum := 0.0
	for c := 0; c < d.K(); c++ {
		sum += d.P(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestNaiveBayesHandlesNulls(t *testing.T) {
	tab := mixedTable(t, 500, 33)
	for r := 0; r < 100; r++ {
		tab.Set(r, 0, dataset.Null())
		tab.Set(r, 1, dataset.Null())
	}
	model, err := (&Trainer{}).Train(nbInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	// All-null row: prediction falls back to the prior.
	d := model.Predict([]dataset.Value{dataset.Null(), dataset.Null(), dataset.Null()})
	if d.N() <= 0 {
		t.Fatalf("null-row prediction must still carry support")
	}
	if p0 := d.P(0); p0 < 0.3 || p0 > 0.7 {
		t.Fatalf("prior-ish prediction expected, got P(0)=%g", p0)
	}
}

func TestNaiveBayesFailsWithoutLabels(t *testing.T) {
	tab := mixedTable(t, 20, 34)
	for r := 0; r < 20; r++ {
		tab.Set(r, 2, dataset.Null())
	}
	if _, err := (&Trainer{}).Train(nbInstances(t, tab)); err == nil {
		t.Fatalf("training without labels must fail")
	}
}

func TestNaiveBayesUnseenClassGaussian(t *testing.T) {
	// One class never observes the numeric attribute: prediction must not
	// produce NaNs.
	tab := dataset.NewTable(nbSchema(t))
	for i := 0; i < 50; i++ {
		tab.AppendRow([]dataset.Value{dataset.Nom(0), dataset.Num(10), dataset.Nom(0)})
		tab.AppendRow([]dataset.Value{dataset.Nom(1), dataset.Null(), dataset.Nom(1)})
	}
	model, err := (&Trainer{}).Train(nbInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	d := model.Predict([]dataset.Value{dataset.Nom(1), dataset.Num(10), dataset.Null()})
	for c := 0; c < d.K(); c++ {
		if math.IsNaN(d.P(c)) {
			t.Fatalf("NaN probability")
		}
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	tab := mixedTable(t, 1000, 53)
	model, err := (&Trainer{}).Train(nbInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	var d mlcore.Distribution
	rng := rand.New(rand.NewSource(54))
	for i := 0; i < 500; i++ {
		row := []dataset.Value{dataset.Nom(rng.Intn(2)), dataset.Num(rng.Float64() * 100), dataset.Null()}
		if rng.Intn(5) == 0 {
			row[0] = dataset.Null()
		}
		if rng.Intn(5) == 0 {
			row[1] = dataset.Null()
		}
		want := model.Predict(row)
		model.(*Model).PredictInto(row, &d)
		if want.Total != d.Total {
			t.Fatalf("row %v: totals differ: %v vs %v", row, want.Total, d.Total)
		}
		for c := range want.Counts {
			if want.Counts[c] != d.Counts[c] {
				t.Fatalf("row %v class %d: Predict %v, PredictInto %v", row, c, want.Counts[c], d.Counts[c])
			}
		}
	}
}
