package nbayes

import (
	"math"
	"sync"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/stats"
)

// The columnar kernel. PredictInto pays a math.Log call per (nominal
// attribute × class) on every row even though the conditional tables are
// fixed at training time. The block kernel hoists those logs into tables
// built once per model (lazily, so gob-decoded models work unchanged) and
// then sweeps each attribute column over the whole chunk. The arithmetic
// per row — which terms are added, in which order, and the final
// normalization — is kept op-for-op identical to PredictInto, so the two
// paths produce bit-identical distributions.

// batchTables are the precomputed log tables; unexported, so gob ignores
// them and decoded models rebuild lazily.
type batchTables struct {
	logPriors []float64
	// logCond[i][c][v] = log(Nominals[i].Cond[c][v]).
	logCond [][][]float64
}

// batchState carries the sync.Once guarding table construction.
type batchState struct {
	once sync.Once
	tab  batchTables
}

var _ mlcore.BlockClassifier = (*Model)(nil)

// tables returns the model's log tables, building them on first use.
func (m *Model) tables() *batchTables {
	m.batch.once.Do(func() {
		t := &m.batch.tab
		t.logPriors = make([]float64, m.K)
		for c, p := range m.Priors {
			t.logPriors[c] = math.Log(p)
		}
		t.logCond = make([][][]float64, len(m.Nominals))
		for i, nm := range m.Nominals {
			t.logCond[i] = make([][]float64, len(nm.Cond))
			for c, cond := range nm.Cond {
				lc := make([]float64, len(cond))
				for v, p := range cond {
					lc[v] = math.Log(p)
				}
				t.logCond[i][c] = lc
			}
		}
	})
	return &m.batch.tab
}

// PredictBlockInto implements mlcore.BlockClassifier. Each dists[r] ends
// up exactly as PredictInto(row r) would leave it.
func (m *Model) PredictBlockInto(ck *dataset.ColumnChunk, dists []mlcore.Distribution) {
	t := m.tables()
	for r := range dists {
		d := &dists[r]
		d.Reset(m.K)
		copy(d.Counts, t.logPriors)
	}
	for i, nm := range m.Nominals {
		col := ck.Col(nm.Attr)
		lc := t.logCond[i]
		for r := range dists {
			if col.Null(r) {
				continue
			}
			idx := int(col.Nom[r])
			logp := dists[r].Counts
			for c := range logp {
				if idx < len(nm.Cond[c]) {
					logp[c] += lc[c][idx]
				}
			}
		}
	}
	for _, gm := range m.Gauss {
		col := ck.Col(gm.Attr)
		for r := range dists {
			if col.Null(r) {
				continue
			}
			x := col.Num[r]
			logp := dists[r].Counts
			for c := range logp {
				if gm.SeenByClass[c] {
					logp[c] += math.Log(stats.GaussianPDF(x, gm.Mu[c], gm.Sigma[c]) + 1e-300)
				}
			}
		}
	}
	// Normalize in log space, per row — identical to PredictInto.
	for r := range dists {
		d := &dists[r]
		logp := d.Counts
		maxLog := math.Inf(-1)
		for _, lp := range logp {
			if lp > maxLog {
				maxLog = lp
			}
		}
		total := 0.0
		for c, lp := range logp {
			p := math.Exp(lp - maxLog)
			d.Counts[c] = p
			total += p
		}
		if total > 0 {
			for c := range d.Counts {
				d.Counts[c] = d.Counts[c] / total * m.TotalW
			}
		}
		d.Total = m.TotalW
	}
}
