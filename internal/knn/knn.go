// Package knn implements a k-nearest-neighbour instance-based classifier —
// one of the alternatives evaluated for the QUIS domain in §5 of the paper.
// Distances use the heterogeneous Euclidean/overlap metric (HEOM): overlap
// (0/1) on nominal attributes, range-normalized absolute difference on
// numeric and date attributes, and maximal distance when either value is
// null.
package knn

import (
	"fmt"
	"math"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// Options configure training.
type Options struct {
	// K is the neighbourhood size (default 5).
	K int
}

// Trainer induces (memorizes) kNN models.
type Trainer struct {
	Opts Options
}

var _ mlcore.Trainer = (*Trainer)(nil)

// Name implements mlcore.Trainer.
func (t *Trainer) Name() string { return "knn" }

// Model is the stored instance base.
type Model struct {
	K       int // neighbours
	Classes int
	Base    []int
	Rows    [][]dataset.Value
	Class   []int
	Weight  []float64
	IsNum   []bool    // per base attribute
	Range   []float64 // per base attribute (numeric normalization)
}

var _ mlcore.Classifier = (*Model)(nil)
var _ mlcore.IncrementalClassifier = (*Model)(nil)

// Train implements mlcore.Trainer.
func (t *Trainer) Train(ins *mlcore.Instances) (mlcore.Classifier, error) {
	k := t.Opts.K
	if k == 0 {
		k = 5
	}
	return train(ins, k)
}

// train memorizes the instance set; k is the resolved neighbourhood size.
func train(ins *mlcore.Instances, k int) (mlcore.Classifier, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	schema := ins.Table.Schema()
	m := &Model{K: k, Classes: ins.K, Base: ins.Base}
	m.IsNum = make([]bool, len(ins.Base))
	m.Range = make([]float64, len(ins.Base))
	for i, attr := range ins.Base {
		a := schema.Attr(attr)
		if a.IsNumberLike() {
			m.IsNum[i] = true
			m.Range[i] = a.Max - a.Min
			if m.Range[i] <= 0 {
				m.Range[i] = 1
			}
		}
	}
	for i, r := range ins.Rows {
		c := ins.Class[r]
		if c < 0 {
			continue
		}
		m.Rows = append(m.Rows, ins.Table.Row(r))
		m.Class = append(m.Class, c)
		m.Weight = append(m.Weight, ins.Weights[i])
	}
	if len(m.Rows) == 0 {
		return nil, fmt.Errorf("knn: no instances with a known class value")
	}
	return m, nil
}

// Update implements mlcore.IncrementalClassifier. A kNN model *is* its
// training set, so the cheapest sound successor is a fresh memorization
// of the full post-delta set (a reservoir swap): trivially
// gob-byte-identical to a retrain, with no distance structures to
// rebuild. The neighbourhood size is frozen from the model; the trainer
// argument is unused.
func (m *Model) Update(_ mlcore.Trainer, d mlcore.UpdateDelta) (mlcore.Classifier, error) {
	if d.Full == nil {
		return nil, fmt.Errorf("knn: update requires the full post-delta instance set")
	}
	return train(d.Full, m.K)
}

// distance computes HEOM between a query row and stored instance i.
func (m *Model) distance(row []dataset.Value, i int) float64 {
	d := 0.0
	for bi, attr := range m.Base {
		q, s := row[attr], m.Rows[i][attr]
		var dd float64
		switch {
		case q.IsNull() || s.IsNull():
			dd = 1
		case m.IsNum[bi]:
			dd = math.Abs(q.Float()-s.Float()) / m.Range[bi]
			if dd > 1 {
				dd = 1
			}
		default:
			if q.NomIdx() != s.NomIdx() {
				dd = 1
			}
		}
		d += dd * dd
	}
	return math.Sqrt(d)
}

// cand is one neighbourhood candidate during selection.
type cand struct {
	dist float64
	idx  int
}

// candStackSize bounds the neighbourhood that fits in a stack-allocated
// selection buffer; larger k values fall back to a heap allocation.
const candStackSize = 32

// candSiftDown restores the max-heap property from index i down; heap[0]
// is the farthest of the current k nearest.
func candSiftDown(heap []cand, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(heap) && heap[l].dist > heap[largest].dist {
			largest = l
		}
		if r < len(heap) && heap[r].dist > heap[largest].dist {
			largest = r
		}
		if largest == i {
			return
		}
		heap[i], heap[largest] = heap[largest], heap[i]
		i = largest
	}
}

// Predict implements mlcore.Classifier: the class histogram of the k
// nearest stored instances, with the neighbourhood weight as support.
// Selection uses a bounded max-heap (O(n log k)), not a full sort — kNN is
// already the slowest family in the §5 comparison without extra help.
func (m *Model) Predict(row []dataset.Value) mlcore.Distribution {
	var d mlcore.Distribution
	m.PredictInto(row, &d)
	return d
}

// PredictInto implements mlcore.Classifier without allocating for the
// usual neighbourhood sizes: the selection buffer lives on the stack for
// k <= candStackSize.
func (m *Model) PredictInto(row []dataset.Value, d *mlcore.Distribution) {
	k := m.K
	if k > len(m.Rows) {
		k = len(m.Rows)
	}
	var stack [candStackSize]cand
	var heap []cand
	if k <= candStackSize {
		heap = stack[:0]
	} else {
		heap = make([]cand, 0, k)
	}
	for i := range m.Rows {
		dist := m.distance(row, i)
		if len(heap) < k {
			heap = append(heap, cand{dist, i})
			for j := len(heap) - 1; j > 0; {
				parent := (j - 1) / 2
				if heap[parent].dist >= heap[j].dist {
					break
				}
				heap[parent], heap[j] = heap[j], heap[parent]
				j = parent
			}
			continue
		}
		if dist < heap[0].dist {
			heap[0] = cand{dist, i}
			candSiftDown(heap, 0)
		}
	}
	d.Reset(m.Classes)
	for _, c := range heap {
		d.Add(m.Class[c.idx], m.Weight[c.idx])
	}
}
