package knn_test

import (
	"testing"

	"dataaudit/internal/knn"
	"dataaudit/internal/mlcore/conform"
)

// TestIncrementalConformance holds the kNN Update (a reservoir swap —
// re-memorization of the full post-delta set) to the
// IncrementalClassifier contract with byte-exact successor equivalence.
func TestIncrementalConformance(t *testing.T) {
	base, delta := conform.Fixture(t, 400, 60, 40, 2)
	conform.Run(t, conform.Config{Trainer: &knn.Trainer{}, Exact: true}, base, delta)
}
