package knn

import (
	"math"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

func knnSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.NewNominal("f1", "x", "y"),
		dataset.NewNumeric("f2", 0, 100),
		dataset.NewNominal("class", "c0", "c1"),
	)
}

func knnInstances(t testing.TB, tab *dataset.Table) *mlcore.Instances {
	t.Helper()
	return mlcore.NewInstances(tab, []int{0, 1}, 2, func(r int) int {
		v := tab.Get(r, 2)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
}

func clustersTable(t testing.TB, n int, seed int64) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(knnSchema(t))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := rng.Intn(2)
		x := 20.0
		if c == 1 {
			x = 80
		}
		x += rng.NormFloat64() * 6
		if x < 0 {
			x = 0
		}
		if x > 100 {
			x = 100
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(c), dataset.Num(x), dataset.Nom(c)})
	}
	return tab
}

func TestKNNLearnsClusters(t *testing.T) {
	tab := clustersTable(t, 600, 41)
	model, err := (&Trainer{Opts: Options{K: 5}}).Train(knnInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	probe := func(f1 int, x float64) int {
		d := model.Predict([]dataset.Value{dataset.Nom(f1), dataset.Num(x), dataset.Null()})
		best, _ := d.Best()
		return best
	}
	if probe(0, 15) != 0 || probe(1, 85) != 1 {
		t.Fatalf("cluster predictions wrong")
	}
}

func TestKNNSupportIsNeighbourhood(t *testing.T) {
	tab := clustersTable(t, 100, 42)
	model, err := (&Trainer{Opts: Options{K: 7}}).Train(knnInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	d := model.Predict(tab.Row(0))
	if math.Abs(d.N()-7) > 1e-9 {
		t.Fatalf("support = %g, want 7", d.N())
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	tab := clustersTable(t, 3, 43)
	model, err := (&Trainer{Opts: Options{K: 10}}).Train(knnInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	d := model.Predict(tab.Row(0))
	if math.Abs(d.N()-3) > 1e-9 {
		t.Fatalf("support = %g, want all 3", d.N())
	}
}

func TestKNNNullDistance(t *testing.T) {
	// A null query value must push instances away but not crash; identical
	// non-null features dominate.
	tab := clustersTable(t, 200, 44)
	model, err := (&Trainer{Opts: Options{K: 3}}).Train(knnInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	d := model.Predict([]dataset.Value{dataset.Null(), dataset.Num(80), dataset.Null()})
	best, _ := d.Best()
	if best != 1 {
		t.Fatalf("numeric feature should still identify the cluster, got class %d", best)
	}
}

func TestKNNNoLabelsFails(t *testing.T) {
	tab := clustersTable(t, 10, 45)
	for r := 0; r < 10; r++ {
		tab.Set(r, 2, dataset.Null())
	}
	if _, err := (&Trainer{}).Train(knnInstances(t, tab)); err == nil {
		t.Fatalf("training without labels must fail")
	}
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	tab := clustersTable(t, 400, 47)
	model, err := (&Trainer{Opts: Options{K: 5}}).Train(knnInstances(t, tab))
	if err != nil {
		t.Fatal(err)
	}
	var d mlcore.Distribution
	rng := rand.New(rand.NewSource(48))
	for i := 0; i < 500; i++ {
		row := []dataset.Value{dataset.Nom(rng.Intn(2)), dataset.Num(rng.Float64() * 100), dataset.Null()}
		if rng.Intn(5) == 0 {
			row[0] = dataset.Null()
		}
		if rng.Intn(5) == 0 {
			row[1] = dataset.Null()
		}
		want := model.Predict(row)
		model.(*Model).PredictInto(row, &d)
		if want.Total != d.Total || !slicesEqual(want.Counts, d.Counts) {
			t.Fatalf("row %v: Predict %+v, PredictInto %+v", row, want, d)
		}
	}
}

func slicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
