package obs

// ShardMetrics instruments the shard coordinator: per-worker dispatch
// outcomes and throughput, replication pushes, retries and worker deaths.
// The worker label is the worker's base URL — the coordinator's worker set
// is a short static flag list, so cardinality stays bounded.
type ShardMetrics struct {
	// Dispatches counts shard dispatches per worker and outcome ("ok" /
	// "error").
	Dispatches *CounterVec
	// RowsShipped counts rows scored remotely, per worker.
	RowsShipped *CounterVec
	// Replications counts model replicas pushed to workers.
	Replications *CounterVec
	// Retries counts shard re-dispatches after a failed attempt.
	Retries *Counter
	// WorkerDeaths counts workers abandoned after consecutive failures.
	WorkerDeaths *CounterVec
	// DispatchSeconds is the per-worker wall time of one shard dispatch
	// (stream + remote scoring + response decode).
	DispatchSeconds *HistogramVec
}

// NewShardMetrics registers the coordinator series.
func NewShardMetrics(r *Registry) *ShardMetrics {
	return &ShardMetrics{
		Dispatches: r.NewCounterVec("dataaudit_shard_dispatches_total",
			"Shard dispatches to workers by outcome.", "worker", "outcome"),
		RowsShipped: r.NewCounterVec("dataaudit_shard_rows_total",
			"Rows scored remotely per worker.", "worker"),
		Replications: r.NewCounterVec("dataaudit_shard_replications_total",
			"Model replicas pushed to workers on version mismatch.", "worker"),
		Retries: r.NewCounter("dataaudit_shard_retries_total",
			"Shards re-dispatched after a failed attempt."),
		WorkerDeaths: r.NewCounterVec("dataaudit_shard_worker_deaths_total",
			"Workers abandoned mid-audit after consecutive failures.", "worker"),
		DispatchSeconds: r.NewHistogramVec("dataaudit_shard_dispatch_seconds",
			"Wall time of one shard dispatch per worker.", DefLatencyBuckets(), "worker"),
	}
}
