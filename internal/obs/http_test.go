package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHTTPMiddlewareCountsAndTimes(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	h := m.Wrap("/v1/models/{name}", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("boom") != "" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok")) // implicit 200
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("GET", "/v1/models/x", nil))
	}
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/models/x?boom=1", nil))

	if got := m.Requests.With("/v1/models/{name}", "GET", "200").Value(); got != 3 {
		t.Fatalf("200 count = %d, want 3", got)
	}
	if got := m.Requests.With("/v1/models/{name}", "GET", "404").Value(); got != 1 {
		t.Fatalf("404 count = %d, want 1", got)
	}
	snap := m.LatencySeconds.With("/v1/models/{name}").Snapshot()
	if snap.Count != 4 {
		t.Fatalf("latency observations = %d, want 4", snap.Count)
	}
}

// TestHTTPMiddlewareNoBodyIs200 pins the "handler wrote nothing" case:
// net/http sends an implicit 200, and the counter must agree.
func TestHTTPMiddlewareNoBodyIs200(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	h := m.Wrap("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	if got := m.Requests.With("/healthz", "GET", "200").Value(); got != 1 {
		t.Fatalf("200 count = %d, want 1", got)
	}
}

// TestStatusRecorderUnwrap keeps http.ResponseController working through
// the middleware — the NDJSON streaming route needs Flush and
// full-duplex on the unwrapped writer.
func TestStatusRecorderUnwrap(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec}
	rc := http.NewResponseController(sr)
	sr.Write([]byte("x"))
	if err := rc.Flush(); err != nil {
		t.Fatalf("Flush through statusRecorder: %v", err)
	}
	if !rec.Flushed {
		t.Fatal("flush did not reach the underlying writer")
	}
}
