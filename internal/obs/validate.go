package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// ValidateExposition checks that r is well-formed Prometheus text
// exposition as this package produces it: every family introduced by a
// HELP line immediately followed by a TYPE line, every sample line
// matching the metric/labels/value grammar and belonging to the current
// family, and families arriving in strictly sorted name order (the
// determinism contract). Tests — the golden test here and the serving
// layer's /metrics scrape test — use it as the format oracle.
func ValidateExposition(r io.Reader) error {
	var (
		helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
		typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|[+-]Inf|NaN)$`)
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		family     string // current family name ("" before the first)
		lastFamily string
		sawType    bool
		expectType bool
		lineNo     int
		samples    int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if expectType {
			m := typeRe.FindStringSubmatch(line)
			if m == nil || m[1] != family {
				return fmt.Errorf("line %d: HELP for %q not followed by its TYPE line: %q", lineNo, family, line)
			}
			expectType = false
			sawType = true
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if lastFamily != "" && m[1] <= lastFamily {
				return fmt.Errorf("line %d: family %q out of sorted order (after %q)", lineNo, m[1], lastFamily)
			}
			family, lastFamily = m[1], m[1]
			expectType = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unexpected comment line %q", lineNo, line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		if family == "" || !sawType {
			return fmt.Errorf("line %d: sample %q before any HELP/TYPE header", lineNo, m[1])
		}
		// Histogram samples append _bucket/_sum/_count to the family name.
		name := m[1]
		if name != family &&
			name != family+"_bucket" && name != family+"_sum" && name != family+"_count" {
			return fmt.Errorf("line %d: sample %q outside family %q", lineNo, name, family)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples found")
	}
	return nil
}
