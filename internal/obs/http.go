package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTP request instrumentation: a per-route request counter (method and
// status code labelled) and a per-route latency histogram. Routes are
// static strings chosen at registration time (the mux pattern, e.g.
// "/v1/models/{name}/audit"), never the raw request path — raw paths
// would explode series cardinality with every model name.

// HTTPMetrics instruments handlers wrapped by Wrap.
type HTTPMetrics struct {
	// Requests counts completed requests by route, method and status code.
	Requests *CounterVec // labels: route, method, code
	// LatencySeconds times requests by route.
	LatencySeconds *HistogramVec // labels: route
}

// NewHTTPMetrics registers the HTTP metric families.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.NewCounterVec("dataaudit_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.", "route", "method", "code"),
		LatencySeconds: r.NewHistogramVec("dataaudit_http_request_seconds",
			"HTTP request latency in seconds (first byte in to handler return), by route pattern.",
			DefLatencyBuckets(), "route"),
	}
}

// statusRecorder captures the response status code. It exposes the
// wrapped writer through Unwrap so http.ResponseController (which the
// NDJSON streaming route uses for Flush and full-duplex) reaches the
// underlying implementation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.code == 0 {
		sr.code = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.code == 0 {
		sr.code = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the real writer.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Wrap instruments one route. The latency child is interned once here,
// so the per-request cost is one histogram observe plus one counter
// lookup for the (method, code) pair.
func (m *HTTPMetrics) Wrap(route string, next http.HandlerFunc) http.HandlerFunc {
	latency := m.LatencySeconds.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		next(sr, r)
		if sr.code == 0 {
			// Handler returned without writing anything; net/http sends 200.
			sr.code = http.StatusOK
		}
		latency.Observe(time.Since(start).Seconds())
		m.Requests.With(route, r.Method, strconv.Itoa(sr.code)).Inc()
	}
}
