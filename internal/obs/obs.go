// Package obs is a dependency-free metrics layer: counters, gauges and
// histograms with atomic hot-path updates, collected into a Registry
// that renders the Prometheus text exposition format (version 0.0.4).
//
// The package exists because the serving stack's instrumentation must
// honor the scoring core's zero-allocation contract: a metric handle is
// resolved once (at registration, or when a labelled child is first
// interned) and every subsequent update is a single atomic operation —
// no map lookups, no locks, no allocation on the hot path. The scrape
// path, by contrast, is deliberately boring: it takes the registry lock,
// walks every family in sorted name order and renders children in
// sorted label order, so two scrapes of the same state are byte-
// identical and golden tests can pin the format.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are not hot-path metrics here).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Observe is a binary
// search plus two atomic adds — allocation-free and safe for concurrent
// use.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bucket is one histogram bucket in a Snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (le);
	// math.Inf(1) for the overflow bucket.
	UpperBound float64
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []Bucket // cumulative, last bucket is +Inf with Count == total
}

// Snapshot copies the histogram state (not atomic across buckets; scrape
// consistency is per-bucket, as in Prometheus itself).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Sum:     math.Float64frombits(h.sum.Load()),
		Count:   h.count.Load(),
		Buckets: make([]Bucket, len(h.bounds)+1),
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets[i] = Bucket{UpperBound: h.bounds[i], Count: cum}
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets[len(h.bounds)] = Bucket{UpperBound: math.Inf(1), Count: cum}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the target bucket — the same estimate
// Prometheus's histogram_quantile computes. It returns NaN on an empty
// histogram; a quantile landing in the +Inf bucket clamps to the largest
// finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			// Clamp to the last finite bound, as histogram_quantile does.
			if i == 0 {
				return math.NaN()
			}
			return s.Buckets[i-1].UpperBound
		}
		lower, prev := 0.0, uint64(0)
		if i > 0 {
			lower, prev = s.Buckets[i-1].UpperBound, s.Buckets[i-1].Count
		}
		width := b.UpperBound - lower
		inBucket := float64(b.Count - prev)
		if inBucket == 0 {
			return b.UpperBound
		}
		return lower + width*(rank-float64(prev))/inBucket
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// DefLatencyBuckets are the default request-latency bucket bounds in
// seconds (Prometheus's DefBuckets).
func DefLatencyBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// kind is the exposition TYPE of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// child is one series of a family: a concrete metric plus its label
// values (empty for unlabelled families).
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFn   func() uint64
	gaugeFn     func() float64
}

// family is one registered metric name.
type family struct {
	name, help string
	kind       kind
	labels     []string
	bounds     []float64 // histogram families only

	mu   sync.RWMutex
	kids map[string]*child
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register interns a family, panicking on invalid or duplicate names —
// metric registration is program structure, not runtime input, so a bad
// name is a programmer error caught in any test that touches the metric.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	if k == kindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not sorted", name))
		}
	}
	f := &family{name: name, help: help, kind: k, labels: labels, bounds: bounds, kids: make(map[string]*child)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.fams[name] = f
	return f
}

// labelKey joins label values into a map key. \xff cannot appear in UTF-8
// text, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// get interns (creating on first sight) the child for a label-value
// tuple; make builds the concrete metric.
func (f *family) get(values []string, make func() *child) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.kids[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.kids[key]; ok {
		return c
	}
	c = make()
	c.labelValues = append([]string(nil), values...)
	f.kids[key] = c
	return c
}

// deleteByLabel drops every child whose named label has the given value.
func (f *family) deleteByLabel(label, value string) {
	idx := -1
	for i, l := range f.labels {
		if l == label {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for key, c := range f.kids {
		if c.labelValues[idx] == value {
			delete(f.kids, key)
		}
	}
}

// NewCounter registers an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.get(nil, func() *child { return &child{counter: &Counter{}} }).counter
}

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.get(nil, func() *child { return &child{gauge: &Gauge{}} }).gauge
}

// NewHistogram registers an unlabelled histogram with the given bucket
// upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, bounds)
	return f.get(nil, func() *child { return &child{hist: newHistogram(bounds)} }).hist
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — for sources that already keep their own atomic tallies
// (e.g. the registry cache).
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.get(nil, func() *child { return &child{counterFn: fn} })
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.get(nil, func() *child { return &child{gaugeFn: fn} })
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// CounterVec is a counter family with labels. With interns a child on
// first use; hot paths should capture the returned *Counter once.
type CounterVec struct{ f *family }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// With returns the child for the label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() *child { return &child{counter: &Counter{}} }).counter
}

// DeleteByLabel drops every child whose label has the given value (e.g.
// all series of a deleted model).
func (v *CounterVec) DeleteByLabel(label, value string) { v.f.deleteByLabel(label, value) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// With returns the child for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() *child { return &child{gauge: &Gauge{}} }).gauge
}

// DeleteByLabel drops every child whose label has the given value.
func (v *GaugeVec) DeleteByLabel(label, value string) { v.f.deleteByLabel(label, value) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// NewHistogramVec registers a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, kindHistogram, labels, bounds)
	return &HistogramVec{f: f, bounds: f.bounds}
}

// With returns the child for the label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() *child { return &child{hist: newHistogram(v.bounds)} }).hist
}

// DeleteByLabel drops every child whose label has the given value.
func (v *HistogramVec) DeleteByLabel(label, value string) { v.f.deleteByLabel(label, value) }

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest float form, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} for parallel name/value slices, with
// an optional extra pair appended (the histogram le label). Empty label
// sets render as no braces at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the text exposition format:
// families in sorted name order, series in sorted label-value order, so
// repeated scrapes of unchanged state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family; series order is the sorted child key order.
func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.kids))
	for k := range f.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.kids[k])
	}
	f.mu.RUnlock()
	if len(kids) == 0 {
		return nil // a vec with no children yet exports nothing
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range kids {
		ls := labelString(f.labels, c.labelValues, "", "")
		switch {
		case c.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, c.counter.Value())
		case c.counterFn != nil:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, c.counterFn())
		case c.gauge != nil:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatValue(c.gauge.Value()))
		case c.gaugeFn != nil:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatValue(c.gaugeFn()))
		case c.hist != nil:
			snap := c.hist.Snapshot()
			for _, bk := range snap.Buckets {
				le := labelString(f.labels, c.labelValues, "le", formatValue(bk.UpperBound))
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, le, bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ls, formatValue(snap.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ls, snap.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
