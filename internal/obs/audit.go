package obs

// The dataaudit metric set. One struct holds every scoring/lifecycle
// metric handle so the monitor (fold path, drift detectors, re-induction
// worker), the serving layer and the one-shot CLI all instrument the
// same series — /metrics on the daemon and `audit -stats` on the command
// line read from identical structs.

// Reinduction outcome label values (the `outcome` label of
// dataaudit_reinductions_total), mirroring the monitor's lifecycle
// events.
const (
	OutcomeReinduced  = "reinduced"
	OutcomeFailed     = "failed"
	OutcomeSkipped    = "skipped"
	OutcomeSuperseded = "superseded"
)

// ReinduceBuckets are the re-induction duration bucket bounds in seconds:
// re-inductions take milliseconds on toy reservoirs and whole minutes on
// warehouse-scale ones.
func ReinduceBuckets() []float64 {
	return []float64{.01, .05, .25, 1, 5, 15, 60, 300}
}

// AuditMetrics is the scoring + lifecycle metric set.
type AuditMetrics struct {
	// RowsScored / RowsSuspicious count audited rows per model, folded
	// batch-at-a-time from the monitor's aggregation path (never row-at-
	// a-time — the scoring hot loop stays allocation- and metric-free).
	RowsScored     *CounterVec // labels: model
	RowsSuspicious *CounterVec // labels: model
	// AttrDeviations / AttrSuspicious count per-attribute findings.
	AttrDeviations *CounterVec // labels: model, attr
	AttrSuspicious *CounterVec // labels: model, attr
	// WindowsSealed counts sealed monitoring windows.
	WindowsSealed *CounterVec // labels: model
	// WindowSuspiciousRate is the most recent sealed window's suspicious
	// rate; BaselineSuspiciousRate the baseline it is compared against.
	WindowSuspiciousRate   *GaugeVec // labels: model
	BaselineSuspiciousRate *GaugeVec // labels: model
	// DriftDelta / DriftPageHinkley expose the live detector statistics;
	// DriftActive is 1 while the drift latch is set.
	DriftDelta       *GaugeVec // labels: model
	DriftPageHinkley *GaugeVec // labels: model
	DriftActive      *GaugeVec // labels: model
	// AttrDrift counts per-attribute drift detector latches — one
	// increment each time an attribute's detector fires against the
	// current baseline.
	AttrDrift *CounterVec // labels: model, attr
	// AttrNulls counts per-attribute null cells among the audited rows —
	// the completeness dimension's raw observation, folded window-at-a-
	// time like every other monitor series.
	AttrNulls *CounterVec // labels: model, attr
	// AttrNullRate is the most recently sealed window's per-attribute
	// null rate (completeness' complement).
	AttrNullRate *GaugeVec // labels: model, attr
	// AttrNullDrift counts completeness-drift latches: an attribute's
	// windowed null rate exceeded its baseline by more than the
	// configured delta.
	AttrNullDrift *CounterVec // labels: model, attr
	// ReservoirRows is the re-induction reservoir fill.
	ReservoirRows *GaugeVec // labels: model
	// Reinductions counts re-induction outcomes; ReinduceSeconds times
	// the background worker end-to-end (induction + profile + publish).
	Reinductions    *CounterVec // labels: model, outcome
	ReinduceSeconds *Histogram
}

// NewAuditMetrics registers the scoring/lifecycle metric set.
func NewAuditMetrics(r *Registry) *AuditMetrics {
	return &AuditMetrics{
		RowsScored: r.NewCounterVec("dataaudit_rows_scored_total",
			"Rows scored through the audit routes, by model.", "model"),
		RowsSuspicious: r.NewCounterVec("dataaudit_rows_suspicious_total",
			"Rows flagged suspicious (error confidence >= the model's minimum), by model.", "model"),
		AttrDeviations: r.NewCounterVec("dataaudit_attr_deviations_total",
			"Attribute-level deviations (findings with positive error confidence), by model and attribute.", "model", "attr"),
		AttrSuspicious: r.NewCounterVec("dataaudit_attr_suspicious_total",
			"Attribute-level deviations at or above the model's minimum confidence, by model and attribute.", "model", "attr"),
		WindowsSealed: r.NewCounterVec("dataaudit_monitor_windows_sealed_total",
			"Sealed quality-monitoring windows, by model.", "model"),
		WindowSuspiciousRate: r.NewGaugeVec("dataaudit_window_suspicious_rate",
			"Suspicious rate of the most recently sealed monitoring window, by model.", "model"),
		BaselineSuspiciousRate: r.NewGaugeVec("dataaudit_baseline_suspicious_rate",
			"Suspicious rate of the model's quality baseline (induction-time profile or adopted first window).", "model"),
		DriftDelta: r.NewGaugeVec("dataaudit_drift_delta",
			"Latest window suspicious rate minus the baseline rate, by model.", "model"),
		DriftPageHinkley: r.NewGaugeVec("dataaudit_drift_page_hinkley",
			"Page-Hinkley cumulative statistic over the window suspicious-rate series, by model.", "model"),
		DriftActive: r.NewGaugeVec("dataaudit_drift_active",
			"1 while the model's drift latch is set (cleared by re-induction), else 0.", "model"),
		AttrDrift: r.NewCounterVec("dataaudit_attr_drift_total",
			"Per-attribute drift detector latches against the current baseline, by model and attribute.", "model", "attr"),
		AttrNulls: r.NewCounterVec("dataaudit_attr_nulls_total",
			"Null cells among the audited rows, by model and attribute.", "model", "attr"),
		AttrNullRate: r.NewGaugeVec("dataaudit_attr_null_rate",
			"Null rate of the most recently sealed monitoring window, by model and attribute.", "model", "attr"),
		AttrNullDrift: r.NewCounterVec("dataaudit_attr_null_drift_total",
			"Completeness-drift latches (windowed null rate above baseline by more than the delta), by model and attribute.", "model", "attr"),
		ReservoirRows: r.NewGaugeVec("dataaudit_reservoir_rows",
			"Rows currently held in the re-induction reservoir sample, by model.", "model"),
		Reinductions: r.NewCounterVec("dataaudit_reinductions_total",
			"Re-induction outcomes by model: reinduced, failed, skipped, superseded.", "model", "outcome"),
		ReinduceSeconds: r.NewHistogram("dataaudit_reinduction_seconds",
			"End-to-end background re-induction duration (induction + quality profile + publish).",
			ReinduceBuckets()),
	}
}

// ForgetModel drops every series labelled with the model — called when
// the model is deleted so a recreated name starts from zero instead of
// inheriting the dead incarnation's counters.
func (m *AuditMetrics) ForgetModel(name string) {
	for _, v := range []*CounterVec{m.RowsScored, m.RowsSuspicious, m.AttrDeviations, m.AttrSuspicious, m.AttrDrift, m.AttrNulls, m.AttrNullDrift, m.WindowsSealed, m.Reinductions} {
		v.DeleteByLabel("model", name)
	}
	for _, v := range []*GaugeVec{m.WindowSuspiciousRate, m.BaselineSuspiciousRate, m.DriftDelta, m.DriftPageHinkley, m.DriftActive, m.ReservoirRows, m.AttrNullRate} {
		v.DeleteByLabel("model", name)
	}
}
