package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.NewGauge("test_level", "level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 102.65; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// Cumulative: le=0.1 holds 0.05 and the boundary value 0.1.
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if q := s.Quantile(0.5); q < 0.1 || q > 1 {
		t.Fatalf("p50 = %v, want within (0.1, 1]", q)
	}
	// p99 lands in the +Inf bucket and clamps to the largest finite bound.
	if q := s.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %v, want clamp to 10", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
}

func TestVecChildrenInternedOnce(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_rows_total", "rows", "model")
	a, b := v.With("m1"), v.With("m1")
	if a != b {
		t.Fatal("same label values returned different children")
	}
	if v.With("m2") == a {
		t.Fatal("different label values shared a child")
	}
}

func TestDeleteByLabel(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_rows_total", "rows", "model", "attr")
	v.With("m1", "a").Inc()
	v.With("m1", "b").Inc()
	v.With("m2", "a").Inc()
	v.DeleteByLabel("model", "m1")
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `model="m1"`) {
		t.Fatalf("deleted model still exported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `model="m2"`) {
		t.Fatalf("surviving model dropped:\n%s", out.String())
	}
}

func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate name":    func() { r.NewCounter("test_dup_total", "x") },
		"invalid name":      func() { r.NewCounter("0bad", "x") },
		"invalid label":     func() { r.NewCounterVec("test_l_total", "x", "0bad") },
		"unsorted buckets":  func() { r.NewHistogram("test_h", "x", []float64{2, 1}) },
		"no buckets":        func() { r.NewHistogram("test_h2", "x", nil) },
		"wrong label count": func() { r.NewCounterVec("test_lv_total", "x", "a").With("v1", "v2") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestExpositionGolden pins the exact text exposition format — HELP/TYPE
// lines, label escaping, histogram le series, value rendering and the
// deterministic family/series ordering — against a committed golden file.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	// Register in scrambled order: output must sort by family name.
	rows := r.NewCounterVec("dataaudit_rows_scored_total", "Rows scored through the audit routes, by model.", "model")
	rows.With("engines").Add(2048)
	rows.With("claims").Add(512)
	g := r.NewGauge("dataaudit_drift_delta_example", "Help with a \\ backslash and\na newline.")
	g.Set(0.125)
	esc := r.NewGaugeVec("dataaudit_escape_example", "Label escaping.", "name")
	esc.With("quote\" slash\\ newline\n").Set(1)
	h := r.NewHistogram("dataaudit_request_seconds_example", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.NewGaugeFunc("dataaudit_uptime_example", "Scrape-time gauge.", func() float64 { return 3.5 })
	r.NewCounterFunc("dataaudit_cache_hits_example_total", "Scrape-time counter.", func() uint64 { return 7 })
	inf := r.NewGauge("dataaudit_inf_example", "Non-finite values.")
	inf.Set(math.Inf(1))

	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	// Scrapes of unchanged state are byte-identical.
	var again strings.Builder
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Fatal("two scrapes of the same state differ")
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from golden (UPDATE_GOLDEN=1 regenerates):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	if err := ValidateExposition(strings.NewReader(got)); err != nil {
		t.Fatalf("golden output fails its own validator: %v", err)
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("test_total", "x", "worker")
	h := r.NewHistogram("test_seconds", "x", DefLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := c.With("w")
			for i := 0; i < 1000; i++ {
				child.Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := c.With("w").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestValidatorRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_help_or_type 1\n",
		"# HELP x h\n# TYPE x counter\nx{unclosed=\"v} 1\n",
		"# HELP x h\n# TYPE x counter\nx notanumber\n",
		"# HELP x h\n# TYPE x widget\nx 1\n",
	} {
		if err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("validator accepted malformed input:\n%s", bad)
		}
	}
}

func TestValidateExpositionOrdering(t *testing.T) {
	// Families out of name order must be rejected — ordering is part of
	// the determinism contract the golden test pins.
	in := "# HELP b h\n# TYPE b counter\nb 1\n# HELP a h\n# TYPE a counter\na 1\n"
	if err := ValidateExposition(strings.NewReader(in)); err == nil {
		t.Fatal("validator accepted out-of-order families")
	}
}
