// Package mlcore is the shared classifier framework of the multiple
// classification / regression approach (§5): weighted training instances
// over a dataset.Table, class distributions with explicit support, and the
// Classifier/Trainer interfaces every induction algorithm in this
// repository implements (C4.5, the audit-adjusted tree, naive Bayes, kNN,
// 1R, PRISM).
//
// The paper's error-confidence measure (Def. 7) "can be used with each
// classifier that both outputs a predicted class distribution and the
// number of training instances this prediction is based on"; Distribution
// carries exactly those two pieces of information — per-class weighted
// counts plus their total — so any Classifier plugged into the audit tool
// automatically supports confidence-ranked deviation reports.
//
// The three building blocks:
//
//   - Distribution: a weighted class histogram. P(c) gives the predicted
//     probability, N() the supporting sample size (the n of Def. 7), and
//     Best() the deterministic argmax (ties break to the lower index,
//     matching C4.5).
//   - Instances: a weighted row view over a table for supervised
//     induction. Fractional weights implement C4.5's missing-value
//     handling; Subset shares the table and class assignment while
//     narrowing the active rows, which is what lets tree inducers recurse
//     without copying data.
//   - Classifier / Trainer: Predict maps a row to a Distribution; Train
//     induces a Classifier from Instances. audit.Options.Trainer accepts
//     any Trainer, which is how the §5.4 ablation experiments mix and
//     match individual algorithm adjustments.
//
// Everything in this package is deterministic: given the same instances,
// every Trainer in the repository induces the same classifier, and
// Predict is a pure function — the property the parallel and streaming
// audit paths (audit.AuditTableParallel, audit.AuditStream) rely on to
// produce byte-identical reports under any scheduling.
package mlcore
