// Package conform is the shared conformance suite for the
// mlcore.IncrementalClassifier contract. Each classifier family's test
// package calls Run with its trainer and a delta fixture; the suite then
// holds the family to the contract's three clauses:
//
//  1. copy-on-write — Update never mutates the receiver (the model's gob
//     bytes are identical before and after);
//  2. empty-delta identity — Update with an empty delta reproduces the
//     model byte-for-byte (exact families);
//  3. successor equivalence — the successor equals a full retrain on the
//     post-delta instance set: gob-byte-identical for exact families,
//     deterministic and prediction-agreeing within tolerance for the
//     warm-started structure searchers.
package conform

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"dataaudit/internal/dataset"
	"dataaudit/internal/mlcore"
)

// Config describes one family's conformance run.
type Config struct {
	// Trainer trains the initial model and (unless Retrain overrides it)
	// the reference retrain the successor is compared against.
	Trainer mlcore.Trainer
	// Exact requires the successor to be gob-byte-identical to the full
	// retrain. Non-exact families must instead be deterministic and agree
	// with the retrain on at least MinAgree of the evaluation rows.
	Exact bool
	// MinAgree is the minimum Best-class agreement rate for non-exact
	// families (default 0.9).
	MinAgree float64
	// Retrain overrides the reference retrain when the equivalence
	// contract is conditional — 1R and Prism are byte-identical only
	// against a retrain that reuses the model's frozen feature view
	// (passed as the base model). nil means Trainer.Train.
	Retrain func(model mlcore.Classifier, full *mlcore.Instances) (mlcore.Classifier, error)
}

// Run executes the conformance suite: trains on base, applies d through
// the incremental path, and checks the contract clauses above.
func Run(t *testing.T, cfg Config, base *mlcore.Instances, d mlcore.UpdateDelta) {
	t.Helper()
	if cfg.MinAgree == 0 {
		cfg.MinAgree = 0.9
	}
	model, err := cfg.Trainer.Train(base)
	if err != nil {
		t.Fatalf("conform: base train failed: %v", err)
	}
	retrain := func(full *mlcore.Instances) (mlcore.Classifier, error) {
		if cfg.Retrain != nil {
			return cfg.Retrain(model, full)
		}
		return cfg.Trainer.Train(full)
	}
	inc, ok := model.(mlcore.IncrementalClassifier)
	if !ok {
		t.Fatalf("conform: %T does not implement mlcore.IncrementalClassifier", model)
	}
	before := gobBytes(t, model)

	// Empty delta: for exact families the successor must be the model,
	// byte for byte. Warm-started families re-accumulate float sums in a
	// different order than the cold search (unsorted threshold pass vs
	// sort-and-scan), so their empty-delta guarantee is the agreement
	// check below, not bit-equality.
	same, err := inc.Update(cfg.Trainer, mlcore.UpdateDelta{Full: base})
	if err != nil {
		t.Fatalf("conform: empty-delta update failed: %v", err)
	}
	if cfg.Exact && !bytes.Equal(before, gobBytes(t, same)) {
		t.Fatal("conform: empty-delta successor is not byte-identical to the model")
	}

	succ, err := inc.Update(cfg.Trainer, d)
	if err != nil {
		t.Fatalf("conform: update failed: %v", err)
	}
	if !bytes.Equal(before, gobBytes(t, model)) {
		t.Fatal("conform: Update mutated the receiver (copy-on-write violated)")
	}

	ref, err := retrain(d.Full)
	if err != nil {
		t.Fatalf("conform: reference retrain failed: %v", err)
	}
	if cfg.Exact {
		if !bytes.Equal(gobBytes(t, ref), gobBytes(t, succ)) {
			t.Fatal("conform: successor is not gob-byte-identical to the full retrain")
		}
		return
	}

	// Warm-started families: the update must be deterministic...
	succ2, err := inc.Update(cfg.Trainer, d)
	if err != nil {
		t.Fatalf("conform: repeated update failed: %v", err)
	}
	if !bytes.Equal(gobBytes(t, succ), gobBytes(t, succ2)) {
		t.Fatal("conform: warm-started update is not deterministic")
	}
	// ...and quality-equivalent: Best-class agreement with the retrain.
	agree, total := 0, 0
	row := make([]dataset.Value, d.Full.Table.NumCols())
	var ds, dr mlcore.Distribution
	for _, r := range d.Full.Rows {
		d.Full.Table.RowInto(r, row)
		succ.PredictInto(row, &ds)
		ref.PredictInto(row, &dr)
		bs, _ := ds.Best()
		br, _ := dr.Best()
		total++
		if bs == br {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("conform: empty evaluation set")
	}
	if rate := float64(agree) / float64(total); rate < cfg.MinAgree {
		t.Fatalf("conform: successor agrees with the full retrain on %.3f of rows, want >= %.3f", rate, cfg.MinAgree)
	}
}

// Fixture builds a deterministic synthetic delta fixture: a table whose
// class attribute depends on the first nominal base attribute (with
// noise) and correlates with the numeric attribute, split into a base
// set, an added batch, and a removed sub-multiset of the base rows.
// The returned base holds the first baseRows rows; the delta adds the
// remaining addRows rows and removes removeRows rows drawn from base.
func Fixture(t *testing.T, baseRows, addRows, removeRows int, seed int64) (*mlcore.Instances, mlcore.UpdateDelta) {
	t.Helper()
	if removeRows >= baseRows {
		t.Fatalf("conform: removeRows %d must be < baseRows %d", removeRows, baseRows)
	}
	schema, err := dataset.NewSchema(
		dataset.NewNominal("nomA", "a0", "a1", "a2", "a3"),
		dataset.NewNominal("nomB", "b0", "b1", "b2"),
		dataset.NewNumeric("num", 0, 100),
		dataset.NewNominal("cls", "c0", "c1", "c2"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tab := dataset.NewTable(schema)
	n := baseRows + addRows
	for i := 0; i < n; i++ {
		a := rng.Intn(4)
		cls := a % 3
		if rng.Float64() < 0.1 { // label noise
			cls = rng.Intn(3)
		}
		row := []dataset.Value{
			dataset.Nom(a),
			dataset.Nom(rng.Intn(3)),
			dataset.Num(float64(cls*30) + rng.Float64()*25),
			dataset.Nom(cls),
		}
		if rng.Float64() < 0.05 {
			row[1] = dataset.Null()
		}
		if rng.Float64() < 0.05 {
			row[2] = dataset.Null()
		}
		if rng.Float64() < 0.03 {
			row[3] = dataset.Null()
		}
		tab.AppendRow(row)
	}
	all := mlcore.NewInstances(tab, []int{0, 1, 2}, 3, func(r int) int {
		v := tab.Get(r, 3)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})

	sub := func(rows []int) *mlcore.Instances {
		w := make([]float64, len(rows))
		for i := range w {
			w[i] = 1
		}
		return all.Subset(rows, w)
	}
	baseIdx := make([]int, baseRows)
	for i := range baseIdx {
		baseIdx[i] = i
	}
	removedSet := make(map[int]bool, removeRows)
	for len(removedSet) < removeRows {
		removedSet[rng.Intn(baseRows)] = true
	}
	var removedIdx, fullIdx []int
	for i := 0; i < baseRows; i++ {
		if removedSet[i] {
			removedIdx = append(removedIdx, i)
		} else {
			fullIdx = append(fullIdx, i)
		}
	}
	addedIdx := make([]int, addRows)
	for i := range addedIdx {
		addedIdx[i] = baseRows + i
	}
	fullIdx = append(fullIdx, addedIdx...)

	return sub(baseIdx), mlcore.UpdateDelta{
		Added:   sub(addedIdx),
		Removed: sub(removedIdx),
		Full:    sub(fullIdx),
	}
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("conform: gob encode: %v", err)
	}
	return buf.Bytes()
}
