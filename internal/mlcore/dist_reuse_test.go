package mlcore

import (
	"reflect"
	"testing"
)

func TestDistributionReset(t *testing.T) {
	var d Distribution
	d.Reset(3)
	if d.K() != 3 || d.N() != 0 {
		t.Fatalf("fresh reset: got k=%d n=%.1f", d.K(), d.N())
	}
	d.Add(1, 2)
	d.Add(2, 4)
	backing := &d.Counts[0]

	// Shrinking reuse: same backing array, zeroed contents.
	d.Reset(2)
	if d.K() != 2 || d.N() != 0 || d.Counts[0] != 0 || d.Counts[1] != 0 {
		t.Fatalf("reset did not clear: %+v", d)
	}
	if &d.Counts[0] != backing {
		t.Fatal("reset to a smaller k must reuse the backing array")
	}

	// Growing past capacity reallocates.
	d.Reset(8)
	if d.K() != 8 || d.N() != 0 {
		t.Fatalf("grow reset: got k=%d n=%.1f", d.K(), d.N())
	}
	for i, c := range d.Counts {
		if c != 0 {
			t.Fatalf("count %d not zeroed after grow: %v", i, d.Counts)
		}
	}
}

func TestDistributionCopyFrom(t *testing.T) {
	src := NewDistribution(3)
	src.Add(0, 1.5)
	src.Add(2, 2.5)

	var dst Distribution
	dst.CopyFrom(src)
	if !reflect.DeepEqual(dst.Counts, src.Counts) || dst.Total != src.Total {
		t.Fatalf("copy differs: src %+v dst %+v", src, dst)
	}
	// No sharing: mutating the copy must not touch the source.
	dst.Add(1, 10)
	if src.Counts[1] != 0 || src.Total != 4 {
		t.Fatalf("CopyFrom shared memory with the source: %+v", src)
	}

	// Reuse: copying a smaller distribution into a grown buffer keeps the
	// backing array and truncates the visible length.
	backing := &dst.Counts[0]
	small := NewDistribution(2)
	small.Add(1, 3)
	dst.CopyFrom(small)
	if dst.K() != 2 || dst.Total != 3 || dst.Counts[1] != 3 {
		t.Fatalf("copy of smaller distribution: %+v", dst)
	}
	if &dst.Counts[0] != backing {
		t.Fatal("CopyFrom must reuse a large-enough backing array")
	}
}

func TestDistributionResetZeroAlloc(t *testing.T) {
	var d Distribution
	d.Reset(5)
	allocs := testing.AllocsPerRun(100, func() {
		d.Reset(5)
		d.Add(3, 1)
	})
	if allocs != 0 {
		t.Fatalf("Reset at steady capacity allocated %.1f times per run", allocs)
	}
}
