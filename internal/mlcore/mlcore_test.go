package mlcore

import (
	"math"
	"testing"
	"testing/quick"

	"dataaudit/internal/dataset"
)

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution(3)
	if d.K() != 3 || d.N() != 0 {
		t.Fatalf("fresh distribution wrong: %+v", d)
	}
	d.Add(0, 2)
	d.Add(1, 6)
	d.Add(2, 2)
	if d.N() != 10 {
		t.Fatalf("N = %g", d.N())
	}
	if p := d.P(1); p != 0.6 {
		t.Fatalf("P(1) = %g", p)
	}
	best, pBest := d.Best()
	if best != 1 || pBest != 0.6 {
		t.Fatalf("Best = %d, %g", best, pBest)
	}
}

func TestDistributionEmptyP(t *testing.T) {
	d := NewDistribution(2)
	if d.P(0) != 0 {
		t.Fatalf("empty distribution must have zero probabilities")
	}
	best, p := d.Best()
	if best != 0 || p != 0 {
		t.Fatalf("empty Best = %d, %g", best, p)
	}
}

func TestDistributionTieBreaksLow(t *testing.T) {
	d := NewDistribution(3)
	d.Add(1, 5)
	d.Add(2, 5)
	if best, _ := d.Best(); best != 1 {
		t.Fatalf("ties must break to the lower index, got %d", best)
	}
}

func TestDistributionAddDist(t *testing.T) {
	a := NewDistribution(2)
	a.Add(0, 4)
	b := NewDistribution(2)
	b.Add(1, 2)
	a.AddDist(b, 0.5)
	if a.Counts[1] != 1 || math.Abs(a.N()-5) > 1e-12 {
		t.Fatalf("AddDist wrong: %+v", a)
	}
}

func TestDistributionClone(t *testing.T) {
	a := NewDistribution(2)
	a.Add(0, 3)
	b := a.Clone()
	b.Add(1, 7)
	if a.N() != 3 || a.Counts[1] != 0 {
		t.Fatalf("Clone aliases storage")
	}
}

func TestDistributionProbabilitiesNormalizedProperty(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDistribution(len(raw))
		for c, w := range raw {
			d.Add(c, float64(w))
		}
		if d.N() == 0 {
			return true
		}
		sum := 0.0
		for c := 0; c < d.K(); c++ {
			sum += d.P(c)
		}
		return math.Abs(sum-1) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func testInstances(t *testing.T) (*dataset.Table, *Instances) {
	t.Helper()
	s := dataset.MustSchema(
		dataset.NewNominal("f", "x", "y"),
		dataset.NewNominal("class", "c0", "c1"),
	)
	tab := dataset.NewTable(s)
	for i := 0; i < 10; i++ {
		cls := dataset.Nom(i % 2)
		if i == 9 {
			cls = dataset.Null()
		}
		tab.AppendRow([]dataset.Value{dataset.Nom(i % 2), cls})
	}
	ins := NewInstances(tab, []int{0}, 2, func(r int) int {
		v := tab.Get(r, 1)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
	return tab, ins
}

func TestInstancesBasics(t *testing.T) {
	_, ins := testInstances(t)
	if ins.Len() != 10 {
		t.Fatalf("Len = %d", ins.Len())
	}
	if w := ins.TotalWeight(); w != 10 {
		t.Fatalf("TotalWeight = %g", w)
	}
	d := ins.ClassDistribution()
	// Rows 0..8 labelled, row 9 null: 5 of c0 (0,2,4,6,8), 4 of c1.
	if d.Counts[0] != 5 || d.Counts[1] != 4 {
		t.Fatalf("class distribution = %+v", d)
	}
	if err := ins.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestInstancesSubsetSharesClass(t *testing.T) {
	_, ins := testInstances(t)
	sub := ins.Subset([]int{0, 1}, []float64{0.5, 0.5})
	if sub.Len() != 2 || sub.TotalWeight() != 1 {
		t.Fatalf("Subset wrong: %+v", sub)
	}
	d := sub.ClassDistribution()
	if math.Abs(d.N()-1) > 1e-12 {
		t.Fatalf("subset distribution = %+v", d)
	}
}

func TestInstancesValidateCatchesErrors(t *testing.T) {
	tab, ins := testInstances(t)
	bad := &Instances{Table: tab, Base: []int{0}, K: 2, Rows: []int{0}, Weights: []float64{1, 2}, Class: ins.Class}
	if bad.Validate() == nil {
		t.Fatalf("row/weight mismatch must fail")
	}
	bad2 := &Instances{Table: tab, Base: []int{99}, K: 2, Rows: []int{0}, Weights: []float64{1}, Class: ins.Class}
	if bad2.Validate() == nil {
		t.Fatalf("out-of-range base must fail")
	}
	bad3 := &Instances{Table: tab, Base: []int{0}, K: 2, Rows: []int{0}, Weights: []float64{-1}, Class: ins.Class}
	if bad3.Validate() == nil {
		t.Fatalf("negative weight must fail")
	}
	bad4 := &Instances{Table: tab, Base: []int{0}, K: 0, Rows: nil, Weights: nil, Class: ins.Class}
	if bad4.Validate() == nil {
		t.Fatalf("zero classes must fail")
	}
}
