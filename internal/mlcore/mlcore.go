package mlcore

import (
	"fmt"

	"dataaudit/internal/dataset"
)

// Distribution is a weighted class histogram: probabilities plus the
// (weighted) number of training instances backing them.
type Distribution struct {
	// Counts holds the per-class weighted instance counts.
	Counts []float64
	// Total is the sum of Counts (cached).
	Total float64
}

// NewDistribution allocates an empty distribution over k classes.
func NewDistribution(k int) Distribution {
	return Distribution{Counts: make([]float64, k)}
}

// Add accumulates weight w for class c.
func (d *Distribution) Add(c int, w float64) {
	d.Counts[c] += w
	d.Total += w
}

// AddDist accumulates another distribution scaled by w.
func (d *Distribution) AddDist(o Distribution, w float64) {
	for c, v := range o.Counts {
		d.Counts[c] += v * w
	}
	d.Total += o.Total * w
}

// P returns the probability of class c (0 when the distribution is empty).
func (d Distribution) P(c int) float64 {
	if d.Total <= 0 {
		return 0
	}
	return d.Counts[c] / d.Total
}

// N returns the (weighted) number of backing instances.
func (d Distribution) N() float64 { return d.Total }

// K returns the number of classes.
func (d Distribution) K() int { return len(d.Counts) }

// Best returns the predicted class ĉ (the argmax; ties break to the lower
// index, matching C4.5's deterministic behaviour) and its probability.
func (d Distribution) Best() (int, float64) {
	best, bestC := 0, -1.0
	for c, v := range d.Counts {
		if v > bestC {
			best, bestC = c, v
		}
	}
	return best, d.P(best)
}

// Clone deep-copies the distribution.
func (d Distribution) Clone() Distribution {
	return Distribution{Counts: append([]float64(nil), d.Counts...), Total: d.Total}
}

// Reset clears the distribution to k zeroed classes, reusing the backing
// array when it is large enough. It is the entry point of every
// PredictInto implementation: after Reset the distribution is empty and
// no memory of the previous prediction remains.
func (d *Distribution) Reset(k int) {
	if cap(d.Counts) < k {
		d.Counts = make([]float64, k)
	} else {
		d.Counts = d.Counts[:k]
		for i := range d.Counts {
			d.Counts[i] = 0
		}
	}
	d.Total = 0
}

// CopyFrom overwrites the distribution with o's contents, reusing the
// backing array when possible. After CopyFrom the two distributions share
// no memory.
func (d *Distribution) CopyFrom(o Distribution) {
	if cap(d.Counts) < len(o.Counts) {
		d.Counts = make([]float64, len(o.Counts))
	} else {
		d.Counts = d.Counts[:len(o.Counts)]
	}
	copy(d.Counts, o.Counts)
	d.Total = o.Total
}

// Instances is a weighted view over a table for supervised induction: the
// base attributes, a class assignment per row, and per-row weights
// (fractional weights implement C4.5's missing-value handling).
type Instances struct {
	Table *dataset.Table
	// Base lists the base attribute columns.
	Base []int
	// K is the number of class values.
	K int
	// Rows are the active table row indices.
	Rows []int
	// Weights parallels Rows.
	Weights []float64
	// Class maps a table row index to its class index, or -1 when the
	// class value is null. It must be valid for every row in Rows.
	Class []int
}

// NewInstances builds an instance set over all rows of a table. classOf
// maps a row index to a class index in [0, k) or -1 for null.
func NewInstances(t *dataset.Table, base []int, k int, classOf func(r int) int) *Instances {
	n := t.NumRows()
	ins := &Instances{
		Table:   t,
		Base:    append([]int(nil), base...),
		K:       k,
		Rows:    make([]int, 0, n),
		Weights: make([]float64, 0, n),
		Class:   make([]int, n),
	}
	for r := 0; r < n; r++ {
		ins.Class[r] = classOf(r)
		ins.Rows = append(ins.Rows, r)
		ins.Weights = append(ins.Weights, 1)
	}
	return ins
}

// Len returns the number of active rows.
func (ins *Instances) Len() int { return len(ins.Rows) }

// TotalWeight sums the active weights.
func (ins *Instances) TotalWeight() float64 {
	s := 0.0
	for _, w := range ins.Weights {
		s += w
	}
	return s
}

// ClassDistribution tallies the weighted class histogram of the active
// rows; rows with a null class are skipped.
func (ins *Instances) ClassDistribution() Distribution {
	d := NewDistribution(ins.K)
	for i, r := range ins.Rows {
		if c := ins.Class[r]; c >= 0 {
			d.Add(c, ins.Weights[i])
		}
	}
	return d
}

// Subset returns a view sharing Table and Class but with its own row/weight
// slices.
func (ins *Instances) Subset(rows []int, weights []float64) *Instances {
	return &Instances{Table: ins.Table, Base: ins.Base, K: ins.K, Rows: rows, Weights: weights, Class: ins.Class}
}

// Validate checks internal consistency.
func (ins *Instances) Validate() error {
	if len(ins.Rows) != len(ins.Weights) {
		return fmt.Errorf("mlcore: %d rows but %d weights", len(ins.Rows), len(ins.Weights))
	}
	if ins.K < 1 {
		return fmt.Errorf("mlcore: need at least one class, got %d", ins.K)
	}
	for i, r := range ins.Rows {
		if r < 0 || r >= ins.Table.NumRows() {
			return fmt.Errorf("mlcore: row index %d out of range", r)
		}
		if ins.Weights[i] < 0 {
			return fmt.Errorf("mlcore: negative weight at position %d", i)
		}
		if c := ins.Class[r]; c < -1 || c >= ins.K {
			return fmt.Errorf("mlcore: class %d out of range at row %d", c, r)
		}
	}
	for _, b := range ins.Base {
		if b < 0 || b >= ins.Table.NumCols() {
			return fmt.Errorf("mlcore: base attribute %d out of range", b)
		}
	}
	return nil
}

// Classifier predicts a class distribution (with support) for a row.
//
// The allocation contract: PredictInto is the steady-state scoring path —
// once the caller's scratch distribution has grown to the classifier's
// class count, a PredictInto call performs no heap allocation. Predict is
// the convenience form; implementations may allocate or may return a
// distribution sharing memory with the model (callers must not mutate
// it). The two must produce identical values for the same row.
type Classifier interface {
	// Predict returns the class distribution for the row. The
	// distribution's Total is the weighted number of training instances
	// the prediction is based on — the n of Definition 7.
	Predict(row []dataset.Value) Distribution
	// PredictInto writes the class distribution for the row into d,
	// reusing d's backing memory (via Reset/CopyFrom) instead of
	// allocating. d's previous contents are discarded; after the call d
	// shares no memory with the model.
	PredictInto(row []dataset.Value, d *Distribution)
}

// BlockClassifier is implemented by classifier families with a columnar
// batch kernel: one call scores a whole ColumnChunk, hoisting per-row
// dispatch, table lookups, and transcendental-function setup out of the
// inner loop. The chunked scorer (audit.CheckChunk) probes for it and
// falls back to per-row PredictInto otherwise.
type BlockClassifier interface {
	Classifier
	// PredictBlockInto writes the class distribution of chunk row r into
	// dists[r] for every r in [0, len(dists)); len(dists) must not exceed
	// ck.Rows(). Each dists[r] must end up exactly as PredictInto would
	// leave it for the same row — the differential suite holds the two
	// paths byte-identical. Like PredictInto, the call performs no heap
	// allocation once every dists[r] has grown to the class count.
	PredictBlockInto(ck *dataset.ColumnChunk, dists []Distribution)
}

// Trainer induces a Classifier from instances.
type Trainer interface {
	// Name identifies the algorithm in experiment reports.
	Name() string
	// Train induces a classifier.
	Train(ins *Instances) (Classifier, error)
}

// UpdateDelta describes a batch change to a training set: rows that were
// added, rows that were removed, and the full post-change training set.
// Full must always be the complete new training set — families whose
// sufficient statistics cannot be maintained exactly under subtraction
// (Gaussian moments) or whose structure must be re-searched (trees, rule
// covers) read it; pure count-based families apply Added/Removed
// directly. When Added and Removed are BOTH nil the delta is a full
// replacement: the successor must be rebuilt from Full, reusing whatever
// frozen state the family keeps (discretizer bins, tree skeletons,
// hyperparameters) — the path a caller takes when it cannot attribute
// the change row by row (e.g. disjoint reservoir samples).
type UpdateDelta struct {
	Added   *Instances
	Removed *Instances
	Full    *Instances
}

// IncrementalClassifier is implemented by classifier families that can
// produce a successor model from a batch delta more cheaply than
// retraining from scratch.
//
// Update is copy-on-write: the receiver is never mutated (live scorers
// may still be serving it concurrently) and a new classifier equivalent
// to trainer.Train(d.Full) is returned. "Equivalent" is exact —
// gob-byte-identical — for the count-maintained families (naive Bayes,
// kNN, 1R given the same frozen feature view) and quality-equivalent
// (same sensitivity/specificity within tolerance) for the warm-started
// structure searchers (C4.5/ID3 trees, rule sets). The trainer argument
// supplies the induction options for families that re-search structure;
// count families use the parameters frozen inside the model and may
// ignore it. Implementations return an error when the incremental path
// is unsound for this model (e.g. a gob-decoded model predating the raw
// tallies) — callers fall back to a full retrain.
type IncrementalClassifier interface {
	Classifier
	Update(trainer Trainer, d UpdateDelta) (Classifier, error)
}
