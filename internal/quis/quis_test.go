package quis

import (
	"math"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	tab, err := Generate(Params{NumRecords: 200000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Data.NumRows() != 200000 {
		t.Fatalf("rows = %d", tab.Data.NumRows())
	}
	if tab.Data.NumCols() != 8 {
		t.Fatalf("cols = %d; the paper's table has 8 attributes", tab.Data.NumCols())
	}
	if err := tab.Data.Validate(); err != nil {
		t.Fatalf("generated data out of domain: %v", err)
	}
	if len(tab.PaperDeviationRows) != 2 {
		t.Fatalf("paper deviations = %d", len(tab.PaperDeviationRows))
	}
}

func TestPaperGroupSizes(t *testing.T) {
	tab, err := Generate(Params{NumRecords: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := tab.Data
	// BRV=404 group: exactly 16118 records, exactly one with GBM != 901.
	n404, dev404 := 0, 0
	// KBM=01 ∧ GBM=901 group: about 9530 records.
	n501grp, dev501 := 0, 0
	for r := 0; r < d.NumRows(); r++ {
		brv, gbm, kbm := d.Get(r, 0), d.Get(r, 1), d.Get(r, 2)
		if !brv.IsNull() && brv.NomIdx() == 0 {
			n404++
			if gbm.IsNull() || gbm.NomIdx() != 0 {
				dev404++
			}
		}
		if !kbm.IsNull() && kbm.NomIdx() == 0 && !gbm.IsNull() && gbm.NomIdx() == 0 {
			if brv.IsNull() || brv.NomIdx() != 1 {
				if !brv.IsNull() && brv.NomIdx() == 0 {
					// BRV=404 records with KBM=01/GBM=901 belong to the 404
					// group, not the 501 premise group of the paper's rule.
					continue
				}
				n501grp++
				dev501++
			} else {
				n501grp++
			}
		}
	}
	if n404 < 16000 || n404 > 16250 {
		t.Fatalf("BRV=404 group = %d, want ~16118", n404)
	}
	if dev404 != 1 {
		t.Fatalf("BRV=404 deviations = %d, want exactly 1", dev404)
	}
	if n501grp < 9000 || n501grp > 10100 {
		t.Fatalf("KBM=01∧GBM=901 group = %d, want ~9530", n501grp)
	}
	if dev501 == 0 {
		t.Fatalf("the 92%% rule needs deviating instances")
	}
	// The headline error confidence: one deviation among ~16118.
	ec := stats.ErrorConfidence(float64(n404-dev404)/float64(n404), float64(dev404)/float64(n404), float64(n404), 0.95)
	if math.Abs(ec-0.9995) > 0.001 {
		t.Fatalf("BRV=404 deviation error confidence = %.5f, want ~0.9995", ec)
	}
}

func TestScaledDownSample(t *testing.T) {
	tab, err := Generate(Params{NumRecords: 40000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Data.NumRows() != 40000 {
		t.Fatalf("rows = %d", tab.Data.NumRows())
	}
	if _, err := Generate(Params{NumRecords: 100}); err == nil {
		t.Fatalf("tiny samples must be rejected")
	}
}

func TestAuditFindsPaperDeviation(t *testing.T) {
	// End-to-end §6.2 at reduced scale: the audit tool must rank the
	// seeded BRV=404/GBM=911 deviation at the very top.
	tab, err := Generate(Params{NumRecords: 40000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	model, err := audit.Induce(tab.Data, audit.Options{MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	res := model.AuditTable(tab.Data)
	sus := res.Suspicious()
	if len(sus) == 0 {
		t.Fatalf("no suspicious records")
	}
	headlineID := tab.Data.ID(tab.PaperDeviationRows[0])
	rank := -1
	for i, rep := range sus {
		if rep.ID == headlineID {
			rank = i
			break
		}
	}
	if rank < 0 {
		t.Fatalf("the paper's headline deviation was not flagged")
	}
	// At this reduced scale the 404 group shrinks to ~3200 instances, so
	// single deviations in larger synthetic groups can edge slightly ahead;
	// the headline must still sit at the very top of ~40000 records.
	if rank > 50 {
		t.Fatalf("headline deviation ranked %d of %d; expected near the top", rank, len(sus))
	}
	if sus[0].ErrorConf < 0.99 {
		t.Fatalf("top confidence = %g, want ≈ 0.9995", sus[0].ErrorConf)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Params{NumRecords: 40000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{NumRecords: 40000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 1000; r++ {
		for c := 0; c < a.Data.NumCols(); c++ {
			if !a.Data.Get(r, c).Equal(b.Data.Get(r, c)) {
				t.Fatalf("not deterministic at (%d,%d)", r, c)
			}
		}
	}
}
