// Package quis synthesizes the engine-composition excerpt of the QUIS
// (QUality Information System) database used in the paper's real-world
// evaluation (§3.2, §6.2): "a table of the QUIS database that describes the
// composition of all industry engines manufactured by Mercedes-Benz. It
// contains 8 attributes and about 200000 records. The attributes code the
// model category of each individual engine and its production date."
//
// The original data is proprietary; this generator reproduces its
// *structural* properties — strong nominal dependencies between model-code
// attributes with rare deviations — including the two dependencies the
// paper reports verbatim:
//
//	BRV = 404              → GBM = 901   (16118 instances, 1 deviation,
//	                                      error confidence ≈ 99.95 %)
//	KBM = 01 ∧ GBM = 901   → BRV = 501   (9530 instances, ≈ 92 % confidence
//	                                      for a deviating instance)
package quis

import (
	"fmt"
	"math/rand"

	"dataaudit/internal/dataset"
	"dataaudit/internal/stats"
)

// Params configure the synthetic QUIS sample.
type Params struct {
	// NumRecords is the target table size (default 200000).
	NumRecords int
	// Seed drives the generator.
	Seed int64
	// DeviationRate is the fraction of records whose dependent codes are
	// perturbed (beyond the two hand-seeded paper deviations); the default
	// 0.025 matches the §6.2 observation that the audit of the real sample
	// surfaced ≈ 6000 suspicious records out of 200000.
	DeviationRate float64
	// NullRate is the fraction of cells nulled at random (default 0.002).
	NullRate float64
}

// WithDefaults fills unset fields.
func (p Params) WithDefaults() Params {
	if p.NumRecords == 0 {
		p.NumRecords = 200000
	}
	if p.DeviationRate == 0 {
		p.DeviationRate = 0.025
	}
	if p.NullRate == 0 {
		p.NullRate = 0.002
	}
	return p
}

// Schema builds the 8-attribute engine-composition relation. Attribute
// names follow the paper's §6.2 examples (BRV, GBM, KBM); the remaining
// code attributes are named after their QUIS roles.
func Schema() *dataset.Schema {
	codes := func(prefix string, vals ...string) []string { _ = prefix; return vals }
	return dataset.MustSchema(
		dataset.NewNominal("BRV", codes("", "404", "501", "600", "601", "602", "604", "605", "606", "611", "612")...),
		dataset.NewNominal("GBM", codes("", "901", "911", "950", "955", "960", "961", "970")...),
		dataset.NewNominal("KBM", codes("", "01", "02", "03", "04")...),
		dataset.NewNominal("MOTOR", codes("", "M111", "M112", "M113", "OM611", "OM612", "OM613", "OM904")...),
		dataset.NewNominal("PLANT", codes("", "STU", "UTM", "BER", "MAR")...),
		dataset.NewNominal("SERIES", codes("", "W202", "W203", "W210", "W211", "W163", "NCV")...),
		dataset.NewNumeric("DISP", 1500, 13000), // displacement ccm
		dataset.NewDate("PROD", dataset.MustParseDate("1995-01-01"), dataset.MustParseDate("2002-12-31")),
	)
}

// Table holds the generated sample plus the ground-truth deviation rows.
type Table struct {
	Data *dataset.Table
	// PaperDeviationRows are the row indices of the two §6.2 deviations:
	// index 0 is the BRV=404 record with GBM=911, index 1 the
	// KBM=01 ∧ GBM=901 record with a deviating BRV.
	PaperDeviationRows []int
	// SeededDeviations counts all perturbed records (incl. the two above).
	SeededDeviations int
}

// engine profiles: each BRV maps to its regular GBM, KBM distribution,
// motor family, plant, series and displacement band. BRV 404 reproduces
// the paper's dominant dependency; BRV 501 is the consequent of the
// second paper rule.
type profile struct {
	brv    int
	gbm    int
	kbmCat *stats.Categorical
	motor  int
	plant  int
	series int
	dispLo float64
	dispHi float64
	weight float64
}

func profiles() []profile {
	return []profile{
		// BRV 404 → GBM 901: the paper's headline rule (16118 instances).
		{brv: 0, gbm: 0, kbmCat: stats.MustCategorical(0.1, 0.5, 0.3, 0.1), motor: 6, plant: 3, series: 5, dispLo: 4200, dispHi: 4600, weight: 0.081},
		// BRV 501 with KBM=01 and GBM=901: the paper's second rule
		// (9530 instances have KBM=01 ∧ GBM=901).
		{brv: 1, gbm: 0, kbmCat: stats.MustCategorical(1, 0, 0, 0), motor: 3, plant: 0, series: 0, dispLo: 2100, dispHi: 2200, weight: 0.048},
		{brv: 2, gbm: 1, kbmCat: stats.MustCategorical(0.2, 0.6, 0.2, 0), motor: 0, plant: 0, series: 1, dispLo: 1800, dispHi: 2300, weight: 0.14},
		{brv: 3, gbm: 1, kbmCat: stats.MustCategorical(0.3, 0.4, 0.3, 0), motor: 1, plant: 1, series: 2, dispLo: 2400, dispHi: 3200, weight: 0.13},
		{brv: 4, gbm: 2, kbmCat: stats.MustCategorical(0.25, 0.25, 0.25, 0.25), motor: 2, plant: 1, series: 3, dispLo: 3200, dispHi: 5000, weight: 0.12},
		{brv: 5, gbm: 3, kbmCat: stats.MustCategorical(0.4, 0.3, 0.2, 0.1), motor: 3, plant: 2, series: 1, dispLo: 2100, dispHi: 2700, weight: 0.11},
		{brv: 6, gbm: 4, kbmCat: stats.MustCategorical(0.5, 0.5, 0, 0), motor: 4, plant: 2, series: 2, dispLo: 2700, dispHi: 3200, weight: 0.10},
		{brv: 7, gbm: 5, kbmCat: stats.MustCategorical(0.6, 0.2, 0.1, 0.1), motor: 5, plant: 3, series: 4, dispLo: 3900, dispHi: 4300, weight: 0.09},
		{brv: 8, gbm: 6, kbmCat: stats.MustCategorical(0.3, 0.3, 0.3, 0.1), motor: 6, plant: 3, series: 5, dispLo: 6000, dispHi: 13000, weight: 0.09},
		{brv: 9, gbm: 6, kbmCat: stats.MustCategorical(0.2, 0.2, 0.3, 0.3), motor: 6, plant: 3, series: 5, dispLo: 6000, dispHi: 13000, weight: 0.082},
	}
}

// Generate builds the synthetic sample. The §6.2 counts are matched
// closely: the BRV=404 group is forced to exactly 16118 records with a
// single GBM deviation, and the KBM=01 ∧ GBM=901 group (BRV=501) to 9530
// records with enough deviations to land its rule's error confidence near
// 92 %.
func Generate(p Params) (*Table, error) {
	p = p.WithDefaults()
	if p.NumRecords < 30000 {
		return nil, fmt.Errorf("quis: need at least 30000 records to embed the paper's group sizes, got %d", p.NumRecords)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	schema := Schema()
	tab := dataset.NewTable(schema)
	profs := profiles()

	// Scale the paper's two fixed group sizes with the table; at the full
	// 200k they are exactly 16118 and 9530.
	scale := float64(p.NumRecords) / 200000
	n404 := int(16118 * scale)
	n501 := int(9530 * scale)
	// Deviations within BRV=501's premise group that push the second
	// rule's confidence to ≈ 92 % (calibrated for the 0.95 one-sided
	// Wilson bounds): about 0.55 % of the group.
	dev501 := int(float64(n501)*0.0055) + 1

	counts := make([]int, len(profs))
	counts[0] = n404
	counts[1] = n501
	rest := p.NumRecords - n404 - n501
	restWeight := 0.0
	for _, pr := range profs[2:] {
		restWeight += pr.weight
	}
	assigned := 0
	for i, pr := range profs[2:] {
		c := int(float64(rest) * pr.weight / restWeight)
		counts[i+2] = c
		assigned += c
	}
	counts[len(counts)-1] += rest - assigned // remainder

	t := &Table{}
	row := make([]dataset.Value, schema.Len())
	for pi, pr := range profs {
		for i := 0; i < counts[pi]; i++ {
			emitProfile(schema, pr, rng, row)
			// Build in the §6.2 deviations deterministically.
			switch {
			case pi == 0 && i == 0:
				// The single GBM=911 deviation in the BRV=404 group.
				row[1] = dataset.Nom(1)
				t.SeededDeviations++
			case pi == 1 && i < dev501:
				// Deviating BRV inside the KBM=01 ∧ GBM=901 group.
				row[0] = dataset.Nom(2 + rng.Intn(len(schema.Attr(0).Domain)-2))
				t.SeededDeviations++
			default:
				// Background deviations and nulls. Inside the two groups
				// that carry the paper's verbatim rules, the rule-relevant
				// attributes stay untouched so the published counts (one
				// GBM deviation in 16118, the calibrated BRV deviations in
				// 9530) remain exact.
				perturbable := []int{1, 3, 4, 5}
				nullable := []int{0, 1, 2, 3, 4, 5, 6, 7}
				if pi == 0 || pi == 1 {
					perturbable = []int{3, 4, 5}
					nullable = []int{3, 4, 5, 6, 7}
				}
				if rng.Float64() < p.DeviationRate {
					perturb(schema, rng, row, perturbable)
					t.SeededDeviations++
				}
				if rng.Float64() < p.NullRate {
					row[nullable[rng.Intn(len(nullable))]] = dataset.Null()
				}
			}
			rowIdx := tab.NumRows()
			tab.AppendRow(row)
			if pi == 0 && i == 0 {
				t.PaperDeviationRows = append(t.PaperDeviationRows, rowIdx)
			}
			if pi == 1 && i == 0 {
				t.PaperDeviationRows = append(t.PaperDeviationRows, rowIdx)
			}
		}
	}
	t.Data = tab
	return t, nil
}

// emitProfile fills row with a regular record of the profile.
func emitProfile(schema *dataset.Schema, pr profile, rng *rand.Rand, row []dataset.Value) {
	row[0] = dataset.Nom(pr.brv)
	row[1] = dataset.Nom(pr.gbm)
	row[2] = dataset.Nom(pr.kbmCat.Sample(rng))
	row[3] = dataset.Nom(pr.motor)
	row[4] = dataset.Nom(pr.plant)
	row[5] = dataset.Nom(pr.series)
	row[6] = dataset.Num(pr.dispLo + rng.Float64()*(pr.dispHi-pr.dispLo))
	prod := schema.Attr(7)
	row[7] = dataset.Num(prod.Min + rng.Float64()*(prod.Max-prod.Min))
}

// perturb corrupts one of the given dependent code attributes of the row.
func perturb(schema *dataset.Schema, rng *rand.Rand, row []dataset.Value, attrs []int) {
	attr := attrs[rng.Intn(len(attrs))]
	k := schema.Attr(attr).NumValues()
	old := row[attr].NomIdx()
	nv := (old + 1 + rng.Intn(k-1)) % k
	row[attr] = dataset.Nom(nv)
}
