// Package dataaudit is a Go implementation of the data-auditing
// environment from
//
//	D. Lübbers, U. Grimmer, M. Jarke:
//	"Systematic Development of Data Mining-Based Data Quality Tools",
//	Proceedings of the 29th VLDB Conference, Berlin, 2003.
//
// It bundles the paper's three building blocks behind one import path:
//
//   - a rule-pattern-based artificial test data generator (§4.1) with
//     TDG-formulae, TDG-negation, a pragmatic satisfiability test, natural
//     rule sets and Bayesian-network start distributions,
//   - controlled data corruption with a logged ground truth (§4.2) and the
//     sensitivity / specificity / quality-of-correction measures (§4.3),
//   - the data auditing tool itself (§5): the multiple classification /
//     regression approach on an audit-adjusted C4.5, error confidences
//     (Definitions 7–9), ranked deviation reports and proposed
//     corrections.
//
// Beyond the reproduction, the package carries a serving layer for the
// paper's asynchronous deployment shape (§2.2):
//
//   - AuditModel.AuditTableParallel shards deviation detection across a
//     worker pool with output identical to the sequential AuditTable,
//   - AuditModel.AuditStream scores rows pulled from a RowSource (e.g. a
//     streaming CSV decoder) in bounded chunks, so peak memory is
//     independent of the input size while the suspicious set and its
//     confidence ranking stay identical to the batch path,
//   - ModelRegistry (OpenRegistry) is a thread-safe, disk-backed catalogue
//     of named models with monotonic versions, atomic publish and an LRU
//     cache of resident models,
//   - NewAuditServer exposes induction, batch scoring and NDJSON
//     streaming scoring as a JSON HTTP API; cmd/auditd is the
//     ready-to-run daemon,
//   - QualityMonitor turns one-shot auditing into a continuous loop: a
//     QualityProfile baseline is frozen at induction, every scored batch
//     and stream folds into windowed quality snapshots, drift detection
//     (threshold + Page-Hinkley) watches them, and drift can trigger
//     automatic re-induction of the next model version from a reservoir
//     of recently audited rows.
//
// See ARCHITECTURE.md for the package map and data-flow diagrams, and
// docs/api.md for the complete HTTP API reference.
//
// The subpackages under internal/ carry the implementation; this package
// re-exports the stable surface. See the examples/ directory for complete
// programs and cmd/experiments for the reproduction of every table and
// figure of the paper's evaluation.
package dataaudit

import (
	"math/rand"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/dedup"
	"dataaudit/internal/evalx"
	"dataaudit/internal/monitor"
	"dataaudit/internal/obs"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
	"dataaudit/internal/registry"
	"dataaudit/internal/serve"
	"dataaudit/internal/stats"
	"dataaudit/internal/tdg"
)

// ---------------------------------------------------------------------------
// Relational substrate (internal/dataset)

// Value is one table cell: null, nominal (domain index) or number.
type Value = dataset.Value

// Attribute describes a column: name, type and domain range.
type Attribute = dataset.Attribute

// Schema is the ordered attribute list of the target relation.
type Schema = dataset.Schema

// Table is a column-oriented relation instance with stable record IDs.
type Table = dataset.Table

// RowSource is a pull iterator over rows — the streaming counterpart of a
// materialized Table. CSVSource decodes CSV incrementally; JSONLSource
// decodes newline-delimited JSON objects keyed by attribute name;
// SQLSource wraps a database/sql result set; TableSource adapts an
// existing table. Differential tests pin every source to byte-identical
// audit results for the same rows.
type (
	RowSource   = dataset.RowSource
	CSVSource   = dataset.CSVSource
	JSONLSource = dataset.JSONLSource
	SQLSource   = dataset.SQLSource
	TableSource = dataset.TableSource
)

// ErrRowWidth is the sentinel every row-arity failure wraps (CSV decode,
// JSON rows, Schema.CheckRow, AuditResult.Merge); test with errors.Is.
var ErrRowWidth = dataset.ErrRowWidth

// ErrHeader is the sentinel every CSV-header failure wraps: an upload
// whose header has the schema's arity but the wrong column names or
// order. HeaderMismatchError carries the offending columns. Test with
// errors.Is.
var ErrHeader = dataset.ErrHeader

// HeaderMismatchError names every header column that disagrees with the
// schema; it wraps ErrHeader.
type HeaderMismatchError = dataset.HeaderMismatchError

// Re-exported constructors and helpers of the relational substrate.
var (
	// NewCSVSource / NewJSONLSource / NewTableSource and the Open*
	// helpers build streaming row sources; OpenSQLSource wraps a live
	// query result set; ReadAllRows drains any source into a Table.
	NewCSVSource        = dataset.NewCSVSource
	NewJSONLSource      = dataset.NewJSONLSource
	NewTableSource      = dataset.NewTableSource
	OpenCSVFileSource   = dataset.OpenCSVFileSource
	OpenJSONLFileSource = dataset.OpenJSONLFileSource
	OpenSQLSource       = dataset.OpenSQLSource
	ReadAllRows         = dataset.ReadAll
	// Null returns the null value.
	Null = dataset.Null
	// Nom builds a nominal value from a domain index.
	Nom = dataset.Nom
	// Num builds a numeric/date value.
	Num = dataset.Num
	// DateValue builds a date value from a time.Time.
	DateValue = dataset.DateValue
	// NewNominal / NewNumeric / NewDate build attributes.
	NewNominal = dataset.NewNominal
	NewNumeric = dataset.NewNumeric
	NewDate    = dataset.NewDate
	// NewSchema builds and validates a schema; MustSchema panics on error.
	NewSchema  = dataset.NewSchema
	MustSchema = dataset.MustSchema
	// NewTable creates an empty table over a schema.
	NewTable = dataset.NewTable
	// CSV, JSONL and native binary persistence.
	ReadCSV        = dataset.ReadCSV
	WriteCSV       = dataset.WriteCSV
	WriteJSONL     = dataset.WriteJSONL
	ReadCSVFile    = dataset.ReadCSVFile
	WriteCSVFile   = dataset.WriteCSVFile
	ReadTableFile  = dataset.ReadTableFile
	WriteTableFile = dataset.WriteTableFile
	// MustParseDate parses an ISO date or panics (tests/examples).
	MustParseDate = dataset.MustParseDate
)

// ---------------------------------------------------------------------------
// Test data generator (internal/tdg)

// Formula is a TDG-formula (Definitions 1–2); Rule a TDG-rule (Definition 3).
type (
	Formula = tdg.Formula
	Atom    = tdg.Atom
	And     = tdg.And
	Or      = tdg.Or
	Rule    = tdg.Rule
)

// Atom kinds (Definition 1).
const (
	EqConst   = tdg.EqConst
	NeqConst  = tdg.NeqConst
	LtConst   = tdg.LtConst
	GtConst   = tdg.GtConst
	IsNull    = tdg.IsNull
	IsNotNull = tdg.IsNotNull
	EqAttr    = tdg.EqAttr
	NeqAttr   = tdg.NeqAttr
	LtAttr    = tdg.LtAttr
	GtAttr    = tdg.GtAttr
)

// RuleGenParams parameterize random natural-rule-set generation (§4.1.2);
// DataGenParams and StartDists parameterize record generation (§4.1.4).
type (
	RuleGenParams = tdg.RuleGenParams
	DataGenParams = tdg.DataGenParams
	StartDists    = tdg.StartDists
)

// Generator functions and the logic toolbox of §4.1.
var (
	// Negate computes the TDG-negation of Table 1.
	Negate = tdg.Negate
	// Satisfiable runs the pragmatic satisfiability test of §4.1.3.
	Satisfiable = tdg.Satisfiable
	// Implies tests α ⇒ β via unsatisfiability of α ∧ ~β.
	Implies = tdg.Implies
	// NaturalFormula / NaturalRule / NaturalRuleSet check Definitions 4–6.
	NaturalFormula = tdg.NaturalFormula
	NaturalRule    = tdg.NaturalRule
	NaturalRuleSet = tdg.NaturalRuleSet
	// GenerateRuleSet draws a random natural rule set.
	GenerateRuleSet = tdg.GenerateRuleSet
	// GenerateData creates records that follow a rule set.
	GenerateData = tdg.Generate
)

// ---------------------------------------------------------------------------
// Controlled data corruption (internal/pollute)

// Polluters of §4.2 and their configuration.
type (
	PollutionPlan      = pollute.Plan
	ConfiguredPolluter = pollute.Configured
	PollutionLog       = pollute.Log
	PollutionEvent     = pollute.Event
	WrongValuePolluter = pollute.WrongValuePolluter
	NullValuePolluter  = pollute.NullValuePolluter
	Limiter            = pollute.Limiter
	Switcher           = pollute.Switcher
)

// Pollute corrupts a clone of the table according to the plan and returns
// the dirty table plus the complete corruption log (the ground truth).
func Pollute(clean *Table, plan PollutionPlan, rng *rand.Rand) (*Table, *PollutionLog) {
	return pollute.Run(clean, plan, rng)
}

// ---------------------------------------------------------------------------
// The data auditing tool (internal/audit)

// AuditOptions configure structure induction and deviation detection (§5);
// AuditModel is the induced structure model; Finding / RecordReport /
// AuditResult describe detected deviations.
type (
	AuditOptions = audit.Options
	AuditModel   = audit.Model
	Finding      = audit.Finding
	RecordReport = audit.RecordReport
	AuditResult  = audit.Result
	InducerKind  = audit.InducerKind
	FilterMode   = audittree.FilterMode
	// RootCause is a §5.3 single-cell substitution hypothesis produced by
	// AuditModel.ExplainRow for interactive error correction.
	RootCause = audit.RootCause
	// StreamOptions / StreamResult / AttrTally belong to
	// AuditModel.AuditStream, the bounded-memory scoring path: rows are
	// pulled from a RowSource in chunks and folded into running counts,
	// per-attribute deviation tallies and a top-K ranking, so peak memory
	// is O(chunk × workers + K) however large the input.
	StreamOptions = audit.StreamOptions
	StreamResult  = audit.StreamResult
	AttrTally     = audit.AttrTally
	// QualityProfile / AttrQuality freeze a model's quality baseline on
	// its training table (AuditModel.QualityProfile) — the reference the
	// monitoring layer measures drift against.
	QualityProfile = audit.QualityProfile
	AttrQuality    = audit.AttrQuality
	// AttrDim is one attribute's quality dimensions over a scored batch
	// or stream (completeness and uniqueness): null counts/rate and a
	// distinct-value estimate, built from pure set-union/sum accumulators
	// so per-shard folds are byte-identical under any row partition.
	// AuditResult.Dims and StreamResult.Dims carry one per attribute.
	AttrDim = audit.AttrDim
	// ScoreScratch is the per-goroutine reusable buffer set of the
	// zero-allocation scoring core: thread one through
	// AuditModel.CheckRowScratch for steady-state record checking without
	// heap allocations (reports must be Detach-ed before being retained).
	ScoreScratch = audit.ScoreScratch
)

// ErrRowLimit is the sentinel wrapped when a stream exceeds
// StreamOptions.MaxRows; test with errors.Is.
var ErrRowLimit = audit.ErrRowLimit

// Induction algorithm selection (Fig. 1, step 2).
const (
	InducerC45Audit   = audit.InducerC45Audit
	InducerC45        = audit.InducerC45
	InducerID3        = audit.InducerID3
	InducerNaiveBayes = audit.InducerNaiveBayes
	InducerKNN        = audit.InducerKNN
	InducerOneR       = audit.InducerOneR
	InducerPrism      = audit.InducerPrism

	// Rule-filtering modes (§5.4).
	FilterPaper         = audittree.FilterPaper
	FilterReachableOnly = audittree.FilterReachableOnly
	FilterNone          = audittree.FilterNone
)

// Audit tool entry points.
var (
	// Induce builds the structure model for a table.
	Induce = audit.Induce
	// SaveModel / LoadModel persist models for asynchronous auditing
	// (§2.2); SaveModel is crash-safe (temp file + rename).
	SaveModel = audit.Save
	LoadModel = audit.Load
	// MergeResults combines per-shard audit results in order (see also
	// AuditResult.Merge); shards of mismatched relation widths are
	// rejected with ErrRowWidth. AuditModel.AuditTableParallel scores a
	// table with a worker pool, reports identical to AuditTable;
	// AuditModel.AuditStream scores a RowSource with bounded memory.
	MergeResults = audit.MergeResults
	// NewScoreScratch sizes a ScoreScratch for a model's class domains.
	NewScoreScratch = audit.NewScoreScratch
)

// ---------------------------------------------------------------------------
// Duplicate detection (internal/dedup)

// DedupOptions configure duplicate detection: an optional blocking key
// (discovered via Apriori key discovery when unset), the near-duplicate
// similarity threshold, and the per-block pair-comparison cap.
// DedupResult describes the scan — group counts, duplicate rows/rate and
// every group; DuplicateGroup is one cluster of exact or near duplicates.
type (
	DedupOptions   = dedup.Options
	DedupResult    = dedup.Result
	DuplicateGroup = dedup.Group
	DedupDetector  = dedup.Detector
)

var (
	// DetectDuplicates scans a materialized table for exact and near
	// duplicates; DetectDuplicatesSource drains a RowSource first (the
	// detector needs every record). NewDedupDetector is the incremental
	// chunk-at-a-time core both wrap.
	DetectDuplicates       = dedup.Detect
	DetectDuplicatesSource = dedup.DetectSource
	NewDedupDetector       = dedup.NewDetector
)

// ---------------------------------------------------------------------------
// Model registry and serving layer (internal/registry, internal/serve)

// ModelRegistry is a thread-safe, disk-backed catalogue of named structure
// models with monotonic versions and atomic publish; ModelMeta describes
// one published version. AuditServer serves registry models over a JSON
// HTTP API (see cmd/auditd).
type (
	ModelRegistry = registry.Registry
	ModelMeta     = registry.Meta
	AuditServer   = serve.Server
)

var (
	// OpenRegistry opens (creating if needed) a registry directory;
	// RegistryCacheSize caps the resident-model LRU cache.
	OpenRegistry      = registry.Open
	RegistryCacheSize = registry.WithCacheSize
	// IsNotFound reports whether an error is a registry miss.
	IsNotFound = registry.IsNotFound
	// SchemaHash fingerprints a schema for drift detection.
	SchemaHash = registry.SchemaHash
	// NewAuditServer builds the HTTP service over a registry; the With*
	// options tune limits and the scoring pool.
	NewAuditServer     = serve.New
	ServerWorkers      = serve.WithWorkers
	ServerMaxBodyBytes = serve.WithMaxBodyBytes
	ServerMaxBatchRows = serve.WithMaxBatchRows
	ServerLogger       = serve.WithLogger
	// ServerStreamChunkSize / ServerStreamTopK tune the NDJSON streaming
	// audit endpoint (POST /v1/models/{name}/audit/stream).
	ServerStreamChunkSize = serve.WithStreamChunkSize
	ServerStreamTopK      = serve.WithStreamTopK
	// ServerMonitorOptions configures the quality monitor the audit routes
	// feed (window size, drift thresholds, opt-in auto re-induction).
	ServerMonitorOptions = serve.WithMonitorOptions
	// ServerMetrics / ServerDashboard toggle the observability routes
	// (GET /metrics, GET /dashboard) and the per-route instrumentation;
	// both default on.
	ServerMetrics   = serve.WithMetrics
	ServerDashboard = serve.WithDashboard
)

// ---------------------------------------------------------------------------
// Continuous quality monitoring (internal/monitor)

// QualityMonitor folds every scored batch and stream into time-windowed
// per-model snapshots, runs drift detection (baseline threshold plus a
// Page-Hinkley cumulative test) against the model's QualityProfile, and —
// when auto re-induction is enabled — re-induces the model from a
// reservoir of recently audited rows in a background worker (audits of
// the drifting model are never blocked) and publishes the next version
// through the registry's atomic path. With MonitorOptions.StateDir set
// the whole lifecycle state is crash-durable: it persists atomically on
// every sealed window and on Close, and is recovered — guarded against
// deleted/recreated incarnations — at the next boot. GET
// /v1/models/{name}/quality serves its state.
type (
	QualityMonitor  = monitor.Monitor
	MonitorOptions  = monitor.Options
	MonitorState    = monitor.State
	MonitorSnapshot = monitor.Snapshot
	MonitorEvent    = monitor.Event
	DriftState      = monitor.DriftState
)

// Lifecycle event kinds of the monitoring loop.
const (
	EventBaselineAdopted    = monitor.EventBaselineAdopted
	EventDrift              = monitor.EventDrift
	EventReinduced          = monitor.EventReinduced
	EventReinduceSkipped    = monitor.EventReinduceSkipped
	EventReinduceFailed     = monitor.EventReinduceFailed
	EventReinduceSuperseded = monitor.EventReinduceSuperseded

	// MonitorStateDisabled is the MonitorOptions.StateDir sentinel that
	// turns crash-durable persistence off explicitly in contexts (like
	// the serving layer) that otherwise default it on.
	MonitorStateDisabled = monitor.StateDisabled
)

// NewQualityMonitor builds a monitor over a registry; embedders that do
// not run the HTTP layer can feed it via ObserveBatch and Stream, and
// should Close it on shutdown to persist final state. MonitorStateFile
// locates one model's persisted state inside a state directory.
var (
	NewQualityMonitor = monitor.New
	MonitorStateFile  = monitor.StateFile
)

// ---------------------------------------------------------------------------
// Observability (internal/obs)

// MetricsRegistry is a dependency-free Prometheus text-exposition
// registry (counters, gauges, histograms; atomic hot paths, sorted
// deterministic WritePrometheus output). AuditMetrics is the
// scoring/lifecycle metric set the quality monitor feeds
// (MonitorOptions.Metrics); HTTPMetrics wraps http handlers with
// per-route request/latency series. HistSnapshot is a point-in-time
// histogram copy with Prometheus-style interpolated quantiles.
type (
	MetricsRegistry = obs.Registry
	AuditMetrics    = obs.AuditMetrics
	HTTPMetrics     = obs.HTTPMetrics
	HistSnapshot    = obs.HistSnapshot
)

var (
	NewMetricsRegistry = obs.NewRegistry
	NewAuditMetrics    = obs.NewAuditMetrics
	NewHTTPMetrics     = obs.NewHTTPMetrics
	// ValidateExposition checks a Prometheus text exposition for
	// HELP/TYPE ordering, label escaping, histogram shape and sorted
	// series — the oracle behind the /metrics format tests and
	// cmd/promcheck.
	ValidateExposition = obs.ValidateExposition
)

// ---------------------------------------------------------------------------
// Test environment and measures (internal/evalx)

// The §4.3 measures and the Figure-2 pipeline.
type (
	Confusion        = evalx.Confusion
	CorrectionMatrix = evalx.CorrectionMatrix
	PipelineConfig   = evalx.Config
	PipelineResult   = evalx.Result
	SweepPoint       = evalx.Point
)

// Test-environment entry points.
var (
	// RunPipeline executes generate → pollute → audit → evaluate.
	RunPipeline = evalx.Run
	// BaseConfig returns the §6.1 base parameter configuration.
	BaseConfig = evalx.BaseConfig
	// Sweeps reproducing Figures 3–5.
	RecordsSweep   = evalx.RecordsSweep
	RulesSweep     = evalx.RulesSweep
	PollutionSweep = evalx.PollutionSweep
	// EvaluateDedup scores a duplicate scan against the pollution log's
	// duplication ground truth; DedupSweep / CompletenessSweep are the
	// sensitivity/specificity sweeps of the duplicate and completeness
	// dimensions (cmd/experiments E9/E10), floor-gated in CI.
	EvaluateDedup     = evalx.EvaluateDedup
	DedupSweep        = evalx.DedupSweep
	CompletenessSweep = evalx.CompletenessSweep
	// RenderPoints / FormatTable and friends format experiment reports.
	RenderPoints             = evalx.RenderPoints
	RenderDedupPoints        = evalx.RenderDedupPoints
	RenderCompletenessPoints = evalx.RenderCompletenessPoints
	FormatTable              = evalx.FormatTable
)

// ---------------------------------------------------------------------------
// Statistics helpers (internal/stats)

var (
	// LeftBound / RightBound are the one-sided Wilson confidence-interval
	// bounds of §5.1.2.
	LeftBound  = stats.LeftBound
	RightBound = stats.RightBound
	// ErrorConfidence is Definition 7.
	ErrorConfidence = stats.ErrorConfidence
	// MinInstForConfidence derives the §5.4 minInst pre-pruning threshold.
	MinInstForConfidence = stats.MinInstForConfidence
)

// ---------------------------------------------------------------------------
// QUIS domain simulation (internal/quis)

// QUISParams configure the synthetic §6.2 engine-composition sample;
// QUISTable is the generated sample with its ground truth.
type (
	QUISParams = quis.Params
	QUISTable  = quis.Table
)

// QUISSchema builds the 8-attribute engine relation; GenerateQUIS the
// synthetic sample reproducing the paper's §6.2 structure.
var (
	QUISSchema   = quis.Schema
	GenerateQUIS = quis.Generate
)
