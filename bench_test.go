package dataaudit_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment E1–E8 of DESIGN.md, at reduced scale so a
// full -bench=. run stays tractable), plus micro-benchmarks of the hot
// paths. The full-scale reproductions live in cmd/experiments; these
// benches report the same measures via b.ReportMetric so that shape
// regressions show up in CI timings.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"dataaudit"
)

// benchConfig is a ~1/8-scale base configuration.
func benchConfig(seed int64) dataaudit.PipelineConfig {
	cfg := dataaudit.BaseConfig(seed)
	cfg.DataGen.NumRecords = 1200
	cfg.RuleGen.NumRules = 30
	return cfg
}

// BenchmarkFig3RecordsVsSensitivity is E1: the Figure 3 sweep
// (sensitivity as a function of the number of records).
func BenchmarkFig3RecordsVsSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := dataaudit.RecordsSweep(benchConfig(2003), []float64{400, 1200, 2400}, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Sensitivity, "sens@2400")
		b.ReportMetric(last.Specificity, "spec@2400")
	}
}

// BenchmarkFig4RulesVsSensitivity is E2: the Figure 4 sweep
// (sensitivity as a function of the number of rules).
func BenchmarkFig4RulesVsSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := dataaudit.RulesSweep(benchConfig(2003), []float64{10, 30}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[len(points)-1].Sensitivity, "sens@30rules")
	}
}

// BenchmarkFig5PollutionVsSensitivity is E3: the Figure 5 sweep
// (sensitivity as a function of the pollution factor).
func BenchmarkFig5PollutionVsSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := dataaudit.PollutionSweep(benchConfig(2003), []float64{1, 3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Sensitivity, "sens@x1")
		b.ReportMetric(points[1].Sensitivity, "sens@x3")
	}
}

// BenchmarkSpecificityTable is E4: specificity at the base setting
// (the paper's ≈ 99 % claim).
func BenchmarkSpecificityTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := dataaudit.RunPipeline(benchConfig(2003))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Specificity(), "specificity")
	}
}

// BenchmarkQualityOfCorrection is E5: the quality-of-correction measure on
// the base setting.
func BenchmarkQualityOfCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := dataaudit.RunPipeline(benchConfig(2004))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.QualityOfCorrection(), "qoc")
		b.ReportMetric(res.Sensitivity(), "sensitivity")
	}
}

// BenchmarkQUISAudit is E6: the §6.2 engine-composition audit at the
// minimum embeddable scale (30 000 of the paper's 200 000 records).
func BenchmarkQUISAudit(b *testing.B) {
	sample, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{NumRecords: 30000, Seed: 2003})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := dataaudit.Induce(sample.Data, dataaudit.AuditOptions{MinConfidence: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		res := model.AuditTable(sample.Data)
		b.ReportMetric(float64(res.NumSuspicious()), "suspicious")
	}
}

// BenchmarkClassifierSelection is E7: one pipeline run per classifier
// family (the §5 algorithm-selection step).
func BenchmarkClassifierSelection(b *testing.B) {
	kinds := []dataaudit.InducerKind{
		dataaudit.InducerC45Audit,
		dataaudit.InducerC45,
		dataaudit.InducerID3,
		dataaudit.InducerNaiveBayes,
		dataaudit.InducerOneR,
		dataaudit.InducerPrism,
		dataaudit.InducerKNN,
	}
	for _, kind := range kinds {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(2005)
				cfg.Audit.Inducer = kind
				res, err := dataaudit.RunPipeline(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Sensitivity(), "sensitivity")
				b.ReportMetric(res.Specificity(), "specificity")
			}
		})
	}
}

// BenchmarkAdjustmentAblation is E8: the audit-adjusted inducer vs. plain
// C4.5 on the same workload.
func BenchmarkAdjustmentAblation(b *testing.B) {
	for _, variant := range []struct {
		name string
		kind dataaudit.InducerKind
	}{
		{"audit-adjusted", dataaudit.InducerC45Audit},
		{"plain-c45", dataaudit.InducerC45},
		{"plain-id3", dataaudit.InducerID3},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(2006)
				cfg.Audit.Inducer = variant.kind
				res, err := dataaudit.RunPipeline(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Sensitivity(), "sensitivity")
				b.ReportMetric(res.Specificity(), "specificity")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths.

// BenchmarkRuleSetGeneration measures §4.1.2 natural-rule-set generation.
func BenchmarkRuleSetGeneration(b *testing.B) {
	cfg := dataaudit.BaseConfig(1)
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := dataaudit.GenerateRuleSet(cfg.Schema, cfg.RuleGen, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataGeneration measures §4.1.4 record generation (records/op
// fixed at 2000).
func BenchmarkDataGeneration(b *testing.B) {
	cfg := dataaudit.BaseConfig(2)
	rng := rand.New(rand.NewSource(3))
	rules, err := dataaudit.GenerateRuleSet(cfg.Schema, cfg.RuleGen, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := cfg.DataGen
	params.NumRecords = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataaudit.GenerateData(cfg.Schema, rules, params, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStructureInduction measures §5 multiple-classification
// induction on 5000 records.
func BenchmarkStructureInduction(b *testing.B) {
	sample, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{NumRecords: 30000, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	table := dataaudit.NewTable(sample.Data.Schema())
	for r := 0; r < 5000; r++ {
		table.AppendRow(sample.Data.Row(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataaudit.Induce(table, dataaudit.AuditOptions{MinConfidence: 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviationDetection measures §5.2 record checking throughput.
func BenchmarkDeviationDetection(b *testing.B) {
	sample, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{NumRecords: 30000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dataaudit.Induce(sample.Data, dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	row := sample.Data.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.CheckRow(row)
	}
}

// BenchmarkAuditTableParallel measures sharded table scoring against the
// sequential baseline (workers=1 falls back to AuditTable), tracking the
// speedup of the auditd serving path across pool sizes.
func BenchmarkAuditTableParallel(b *testing.B) {
	sample, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{NumRecords: 30000, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dataaudit.Induce(sample.Data, dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			suspicious := 0
			for i := 0; i < b.N; i++ {
				res := model.AuditTableParallel(sample.Data, workers)
				suspicious = res.NumSuspicious()
			}
			b.ReportMetric(float64(suspicious), "suspicious")
			b.ReportMetric(float64(sample.Data.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkSatisfiability measures the §4.1.3 satisfiability test on a
// representative composite formula.
func BenchmarkSatisfiability(b *testing.B) {
	cfg := dataaudit.BaseConfig(6)
	schema := cfg.Schema
	f := dataaudit.And{Subs: []dataaudit.Formula{
		dataaudit.Atom{Kind: dataaudit.EqConst, A: 0, Val: dataaudit.Nom(1)},
		dataaudit.Or{Subs: []dataaudit.Formula{
			dataaudit.Atom{Kind: dataaudit.LtConst, A: 7, Val: dataaudit.Num(100000)},
			dataaudit.Atom{Kind: dataaudit.EqAttr, A: 1, B: 2},
		}},
		dataaudit.Atom{Kind: dataaudit.GtConst, A: 6, Val: dataaudit.Num(11500)},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataaudit.Satisfiable(schema, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkErrorConfidence measures the Definition 7 computation.
func BenchmarkErrorConfidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dataaudit.ErrorConfidence(0.9994, 0.0001, 16118, 0.95)
	}
}

// BenchmarkPollution measures §4.2 corruption throughput (2000 records/op).
func BenchmarkPollution(b *testing.B) {
	cfg := dataaudit.BaseConfig(7)
	rng := rand.New(rand.NewSource(8))
	clean, err := dataaudit.GenerateData(cfg.Schema, nil, dataaudit.DataGenParams{
		NumRecords: 2000, Start: cfg.DataGen.Start,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataaudit.Pollute(clean, cfg.Plan, rng)
	}
}
