// Calibration: the systematic domain-driven development loop of Figure 1.
//
// A domain expert's structural parameters feed the test data generator;
// the data-mining expert benchmarks candidate algorithms on the generated
// benchmark until the numbers justify a choice ("This process can be
// iterated until satisfactory benchmark results are obtained", §3.1).
// The program sweeps the inducers of §5 over the same generated workload
// and prints the §4.3 measures per candidate.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"
	"time"

	"dataaudit"
)

func main() {
	// Step 1 (domain analysis): the expert describes the relation and its
	// structural strength; here we reuse the paper's §6.1 base
	// configuration at reduced scale.
	cfg := dataaudit.BaseConfig(77)
	cfg.DataGen.NumRecords = 4000
	cfg.RuleGen.NumRules = 60

	fmt.Println("benchmarking candidate induction algorithms on the generated workload")
	fmt.Printf("(%d records, %d rules, minConf %.2f)\n\n",
		cfg.DataGen.NumRecords, cfg.RuleGen.NumRules, cfg.Audit.MinConfidence)

	// Step 2+3 (algorithm selection against the test environment).
	type outcome struct {
		name string
		res  *dataaudit.PipelineResult
		took time.Duration
	}
	var outcomes []outcome
	for _, kind := range []dataaudit.InducerKind{
		dataaudit.InducerC45Audit,
		dataaudit.InducerC45,
		dataaudit.InducerID3,
		dataaudit.InducerNaiveBayes,
		dataaudit.InducerOneR,
		dataaudit.InducerPrism,
		dataaudit.InducerKNN,
	} {
		run := cfg
		run.Audit.Inducer = kind
		start := time.Now()
		res, err := dataaudit.RunPipeline(run)
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		outcomes = append(outcomes, outcome{name: string(kind), res: res, took: time.Since(start)})
	}

	rows := make([][]string, len(outcomes))
	for i, o := range outcomes {
		rows[i] = []string{
			o.name,
			fmt.Sprintf("%.4f", o.res.Sensitivity()),
			fmt.Sprintf("%.4f", o.res.Specificity()),
			fmt.Sprintf("%.4f", o.res.QualityOfCorrection()),
			o.took.Round(time.Millisecond).String(),
		}
	}
	fmt.Println(dataaudit.FormatTable(
		[]string{"inducer", "sensitivity", "specificity", "qoc", "wall time"}, rows))

	// Step 4: pick the candidate the way the paper did — specificity must
	// stay near 1 (screening tool), then maximize sensitivity.
	best := -1
	for i, o := range outcomes {
		if o.res.Specificity() < 0.985 {
			continue
		}
		if best < 0 || o.res.Sensitivity() > outcomes[best].res.Sensitivity() {
			best = i
		}
	}
	if best < 0 {
		fmt.Println("\nno candidate kept specificity above 0.985 — loosen the requirements")
		return
	}
	fmt.Printf("\nselected inducer: %s (the paper's calibration \"led to the decision to base\n", outcomes[best].name)
	fmt.Println("our structure inducer and deviation detector on ... C4.5\")")
}
