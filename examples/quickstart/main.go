// Quickstart: the complete data-auditing loop in one file.
//
// It builds a small parts relation, states two domain rules, generates
// clean records that follow them (§4.1.4), corrupts a few cells with a
// logged pollution run (§4.2), induces the structure model with the
// audit-adjusted C4.5 (§5) and prints the suspicious records ranked by
// error confidence together with the proposed corrections (§5.3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dataaudit"
)

func main() {
	// 1. The target relation: three code attributes and a mileage.
	schema := dataaudit.MustSchema(
		dataaudit.NewNominal("MODEL", "sedan", "wagon", "coupe"),
		dataaudit.NewNominal("ENGINE", "E20", "E30", "D25"),
		dataaudit.NewNominal("FUEL", "petrol", "diesel"),
		dataaudit.NewNumeric("KM", 0, 300000),
	)

	// 2. Two domain dependencies as TDG-rules (Definition 3):
	//    coupes always carry the E30 engine, and D25 engines burn diesel.
	rules := []dataaudit.Rule{
		{
			Premise:    dataaudit.Atom{Kind: dataaudit.EqConst, A: 0, Val: schema.Attr(0).MustNominal("coupe")},
			Conclusion: dataaudit.Atom{Kind: dataaudit.EqConst, A: 1, Val: schema.Attr(1).MustNominal("E30")},
		},
		{
			Premise:    dataaudit.Atom{Kind: dataaudit.EqConst, A: 1, Val: schema.Attr(1).MustNominal("D25")},
			Conclusion: dataaudit.Atom{Kind: dataaudit.EqConst, A: 2, Val: schema.Attr(2).MustNominal("diesel")},
		},
	}
	if ok, err := dataaudit.NaturalRuleSet(schema, rules); err != nil || !ok {
		log.Fatalf("rules are not a natural rule set: %v", err)
	}

	// 3. Generate 5000 clean records that follow the rules.
	rng := rand.New(rand.NewSource(42))
	clean, err := dataaudit.GenerateData(schema, rules, dataaudit.DataGenParams{NumRecords: 5000}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d clean records\n", clean.NumRows())

	// 4. Controlled corruption: wrong values and nulls, ~2% of records.
	plan := dataaudit.PollutionPlan{
		Cell: []dataaudit.ConfiguredPolluter{
			{Prob: 0.015, P: &dataaudit.WrongValuePolluter{}},
			{Prob: 0.005, P: &dataaudit.NullValuePolluter{}},
		},
	}
	dirty, logbook := dataaudit.Pollute(clean, plan, rng)
	fmt.Printf("polluted table: %d corruption events on %d records\n",
		len(logbook.Events), len(logbook.CorruptedIDs()))

	// 5. Induce the structure model and audit the dirty table.
	model, err := dataaudit.Induce(dirty, dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	result := model.AuditTable(dirty)
	suspicious := result.Suspicious()
	fmt.Printf("audit: %d suspicious records (induction %v, checking %v)\n\n",
		len(suspicious), model.InduceTime, result.CheckTime)

	// 6. Show the top findings with corrections, and how many are real.
	truth := logbook.CorruptedIDs()
	hits := 0
	for i, rep := range suspicious {
		if truth[rep.ID] {
			hits++
		}
		if i < 5 {
			marker := "false alarm"
			if truth[rep.ID] {
				marker = "real error"
			}
			fmt.Printf("%d. record %d (%s), confidence %.1f%%\n   %s\n",
				i+1, rep.ID, marker, rep.ErrorConf*100, model.DescribeFinding(rep.Best))
		}
	}
	if len(suspicious) > 0 {
		fmt.Printf("\n%d of %d flagged records are logged corruptions\n", hits, len(suspicious))
	}
}
