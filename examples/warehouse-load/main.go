// Warehouse-load: the asynchronous auditing scenario of §2.2 — "While the
// time-consuming structure induction can be prepared off-line, new data can
// be checked for deviations and loaded quickly."
//
// The program induces a structure model from a clean history table, saves
// it, then plays a nightly load: a batch of fresh records (some corrupted)
// is checked against the loaded model. With a high minimum confidence the
// audit acts as the paper's load filter ("If it is necessary to integrate
// new data very quickly in a data warehouse and filter only records that
// are incorrect with a high probability, a high value for specificity is
// recommended").
//
//	go run ./examples/warehouse-load
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"dataaudit"
)

func main() {
	// History: a year of clean engine data.
	history, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{
		NumRecords: 40000, Seed: 11, DeviationRate: 1e-9, NullRate: 1e-9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: induce and persist the structure model. The
	// reachable-only filter keeps pure rules — the history is clean, and
	// the whole point is to flag deviations in FUTURE loads.
	model, err := dataaudit.Induce(history.Data, dataaudit.AuditOptions{
		MinConfidence: 0.9, // load filter: specificity over sensitivity
		Filter:        dataaudit.FilterReachableOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "warehouse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "structure-model.bin")
	if err := dataaudit.SaveModel(modelPath, model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: induced structure model from %d history records in %v, saved to %s\n",
		model.TrainRows, model.InduceTime, modelPath)

	// Online phase: tonight's batch arrives — 2000 new records, a few of
	// them damaged by the feed.
	batchSrc, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{
		NumRecords: 32000, Seed: 12, DeviationRate: 1e-9, NullRate: 1e-9,
	})
	if err != nil {
		log.Fatal(err)
	}
	batch := dataaudit.NewTable(batchSrc.Data.Schema())
	for r := 0; r < 2000; r++ {
		batch.AppendRow(batchSrc.Data.Row(r))
	}
	rng := rand.New(rand.NewSource(13))
	dirtyBatch, logbook := dataaudit.Pollute(batch, dataaudit.PollutionPlan{
		Cell: []dataaudit.ConfiguredPolluter{
			{Prob: 0.01, P: &dataaudit.WrongValuePolluter{}},
			{Prob: 0.005, P: &dataaudit.NullValuePolluter{}},
		},
	}, rng)

	loaded, err := dataaudit.LoadModel(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	result := loaded.AuditTable(dirtyBatch)
	fmt.Printf("online: checked %d batch records in %v\n", dirtyBatch.NumRows(), result.CheckTime)

	// Quarantine the flagged records, load the rest.
	truth := logbook.CorruptedIDs()
	quarantined, realErrors := 0, 0
	for _, rep := range result.Suspicious() {
		quarantined++
		if truth[rep.ID] {
			realErrors++
		}
	}
	fmt.Printf("quarantined %d records (%d of them truly corrupted of %d total corruptions)\n",
		quarantined, realErrors, len(truth))
	fmt.Printf("loaded %d records directly\n", dirtyBatch.NumRows()-quarantined)

	// Show what the quality engineer sees for the first quarantined record.
	if sus := result.Suspicious(); len(sus) > 0 {
		fmt.Printf("\nexample quarantine ticket:\n  record %d, confidence %.1f%%\n  %s\n",
			sus[0].ID, sus[0].ErrorConf*100, loaded.DescribeFinding(sus[0].Best))
	}
}
