// Warranty: the §6.2 QUIS case study on the synthetic engine-composition
// sample — "a table ... that describes the composition of all industry
// engines manufactured by Mercedes-Benz. It contains 8 attributes and
// about 200000 records."
//
// The program generates the sample (use -records to shrink it), audits it
// with the adjusted C4.5, and reports the ranked suspicious records — the
// top one reproduces the paper's BRV=404 → GBM=901 deviation with its
// ≈ 99.95 % error confidence.
//
//	go run ./examples/warranty -records 60000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dataaudit"
)

func main() {
	records := flag.Int("records", 60000, "sample size (>= 30000; the paper uses 200000)")
	top := flag.Int("top", 8, "suspicious records to print")
	flag.Parse()

	fmt.Printf("generating QUIS engine-composition sample (%d records)...\n", *records)
	sample, err := dataaudit.GenerateQUIS(dataaudit.QUISParams{NumRecords: *records, Seed: 2003})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d records, %d seeded deviations\n\n", sample.Data.NumRows(), sample.SeededDeviations)
	fmt.Print(sample.Data.HeadString(5))

	start := time.Now()
	model, err := dataaudit.Induce(sample.Data, dataaudit.AuditOptions{MinConfidence: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	result := model.AuditTable(sample.Data)
	fmt.Printf("\naudit finished in %v (paper: 21 minutes on an Athlon 900)\n", time.Since(start))

	suspicious := result.Suspicious()
	fmt.Printf("%d suspicious records, ranked by error confidence:\n\n", len(suspicious))
	headline := sample.Data.ID(sample.PaperDeviationRows[0])
	for i, rep := range suspicious {
		if i >= *top {
			break
		}
		tag := ""
		if rep.ID == headline {
			tag = "   <- the paper's BRV=404/GBM=911 example"
		}
		fmt.Printf("%2d. record %-7d %.2f%%  %s%s\n",
			i+1, rep.ID, rep.ErrorConf*100, model.DescribeFinding(rep.Best), tag)
	}

	for i, rep := range suspicious {
		if rep.ID == headline {
			fmt.Printf("\nthe paper's headline deviation ranks %d with %.2f%% error confidence\n",
				i+1, rep.ErrorConf*100)
			fmt.Println("(paper: rank 1, 99.95% — based on 16118 instances of BRV = 404 → GBM = 901)")
			break
		}
	}
}
