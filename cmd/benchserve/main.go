// Command benchserve measures the HTTP serving layer per route and
// writes BENCH_serve.json, the serving-layer perf trajectory baseline.
// It boots an in-process auditd server on a loopback listener, publishes
// a model induced from the deterministic benchcore fixture (QUIS sample
// + seeded pollution), drives every instrumented route with real HTTP
// requests, and then reads request counts and p50/p99 latency back from
// the same obs histograms GET /metrics exports — so the committed
// numbers are exactly what a Prometheus scrape of a production auditd
// would show:
//
//	go run ./cmd/benchserve -out BENCH_serve.json
//
// Latency is wall-clock and machine-sensitive, so BENCH_serve.json is a
// trajectory record, not a CI gate (the hermetic gate is benchcore's);
// CI re-measures it on every run and uploads the result as an artifact
// for side-by-side comparison.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"

	"dataaudit/internal/benchutil"
	"dataaudit/internal/dataset"
	"dataaudit/internal/monitor"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
	"dataaudit/internal/registry"
	"dataaudit/internal/serve"
)

// RouteStat is one route's latency summary, read from the serving
// histogram after the drive. Quantiles are bucket-interpolated exactly
// like Prometheus's histogram_quantile over the exported series.
type RouteStat struct {
	// Route is the mux pattern's path, the same label value /metrics
	// exports on dataaudit_http_request_seconds.
	Route string `json:"route"`
	// Requests is the number of timed requests the histogram absorbed.
	Requests uint64 `json:"requests"`
	// MeanMs, P50Ms and P99Ms summarize the request latency.
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// Report is the BENCH_serve.json document.
type Report struct {
	GeneratedBy string      `json:"generatedBy"`
	GoVersion   string      `json:"goVersion"`
	NumCPU      int         `json:"numCPU"`
	Rows        int         `json:"rows"`
	Seed        int64       `json:"seed"`
	Workers     int         `json:"workers"`
	Routes      []RouteStat `json:"routes"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_serve.json", "output file (- for stdout)")
		rows    = flag.Int("rows", 30000, "fixture table size (QUIS needs >= 30000)")
		seed    = flag.Int64("seed", 2003, "fixture generator seed (same as benchcore)")
		reqs    = flag.Int("reqs", 200, "requests per cheap route (health, list, get, quality, dashboard data)")
		audits  = flag.Int("audits", 8, "full-table requests per scoring route (batch and stream audit)")
		workers = flag.Int("workers", 4, "scoring workers per audit request")
	)
	flag.Parse()

	schemaText, csvBody := fixture(*rows, *seed)

	dir, err := os.MkdirTemp("", "benchserve-*")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)
	reg, err := registry.Open(dir)
	if err != nil {
		fail("%v", err)
	}
	srv := serve.New(reg,
		serve.WithLogger(log.New(io.Discard, "", 0)),
		serve.WithWorkers(*workers),
		// One window per full-table audit, so the monitoring fold path —
		// the part of the route the instrumentation must not slow down —
		// runs its seal-and-snapshot branch under measurement too.
		serve.WithMonitorOptions(monitor.Options{WindowRows: int64(*rows)}),
	)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fmt.Fprintf(os.Stderr, "benchserve: %d-row fixture (seed %d), %d reqs/route, %d audits/route, %d workers\n",
		*rows, *seed, *reqs, *audits, *workers)

	// Publish through the induce route itself — its latency lands in the
	// shared "/v1/models" histogram alongside the list requests, exactly
	// as it would in production.
	induceBody := fmt.Sprintf(`{"name":"quis","schema":%q,"csv":%q,"options":{"minConfidence":0.8}}`,
		schemaText, csvBody)
	do(http.MethodPost, ts.URL+"/v1/models", "application/json", induceBody, http.StatusCreated)

	for i := 0; i < *reqs; i++ {
		do(http.MethodGet, ts.URL+"/healthz", "", "", http.StatusOK)
		do(http.MethodGet, ts.URL+"/v1/models", "", "", http.StatusOK)
		do(http.MethodGet, ts.URL+"/v1/models/quis", "", "", http.StatusOK)
		do(http.MethodGet, ts.URL+"/v1/models/quis/quality", "", "", http.StatusOK)
		do(http.MethodGet, ts.URL+"/dashboard/data", "", "", http.StatusOK)
	}
	for i := 0; i < *audits; i++ {
		do(http.MethodPost, ts.URL+"/v1/models/quis/audit", "text/csv", csvBody, http.StatusOK)
		do(http.MethodPost, ts.URL+"/v1/models/quis/audit/stream", "text/csv", csvBody, http.StatusOK)
	}

	rep := Report{
		GeneratedBy: "cmd/benchserve",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Rows:        *rows,
		Seed:        *seed,
		Workers:     *workers,
	}
	for _, route := range []string{
		"/healthz",
		"/v1/models",
		"/v1/models/{name}",
		"/v1/models/{name}/quality",
		"/v1/models/{name}/audit",
		"/v1/models/{name}/audit/stream",
		"/dashboard/data",
	} {
		snap := srv.RouteLatency(route)
		if snap.Count == 0 {
			fail("route %s was never hit — the drive above is out of sync with the route table", route)
		}
		st := RouteStat{
			Route:    route,
			Requests: snap.Count,
			MeanMs:   snap.Sum / float64(snap.Count) * 1000,
			P50Ms:    snap.Quantile(0.50) * 1000,
			P99Ms:    snap.Quantile(0.99) * 1000,
		}
		rep.Routes = append(rep.Routes, st)
		fmt.Fprintf(os.Stderr, "benchserve: %-32s %6d reqs  mean %8.2f ms  p50 %8.2f ms  p99 %8.2f ms\n",
			st.Route, st.Requests, st.MeanMs, st.P50Ms, st.P99Ms)
	}

	if err := benchutil.WriteJSON(rep, *out); err != nil {
		fail("%v", err)
	}
}

// fixture renders the deterministic benchcore table (QUIS sample with
// seeded cell pollution) as the schema text and CSV body the HTTP
// routes consume.
func fixture(rows int, seed int64) (schemaText, csvBody string) {
	sample, err := quis.Generate(quis.Params{NumRecords: rows, Seed: seed})
	if err != nil {
		fail("%v", err)
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	dirty, _ := pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))
	var schemaBuf, csvBuf bytes.Buffer
	if err := dataset.WriteSchemaText(&schemaBuf, dirty.Schema()); err != nil {
		fail("%v", err)
	}
	if err := dataset.WriteCSV(&csvBuf, dirty); err != nil {
		fail("%v", err)
	}
	return schemaBuf.String(), csvBuf.String()
}

// do issues one request and fails loudly on an unexpected status — a
// mis-driven route would otherwise commit garbage latency numbers.
func do(method, url, contentType, body string, wantStatus int) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		fail("%v", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail("%s %s: %v", method, url, err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		fail("%s %s: status %d, want %d\n%s", method, url, resp.StatusCode, wantStatus, b)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchserve: "+format+"\n", args...)
	os.Exit(1)
}
