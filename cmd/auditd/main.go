// Command auditd serves the data auditing tool over HTTP — the §2.2
// asynchronous deployment as a long-running service: models are induced
// from uploaded training data, published in a disk-backed registry with
// monotonic versions, and applied to incoming batches by a parallel
// scoring pool.
//
//	auditd -addr :8080 -dir ./auditd-data
//
//	# publish a model from a schema + training CSV
//	curl -F name=engines -F schema=@engine.schema -F csv=@history.csv \
//	     -F 'options={"minConfidence":0.8}' localhost:8080/v1/models
//
//	# list models
//	curl localhost:8080/v1/models
//
//	# audit a dirty batch (CSV with header) with 4 workers
//	curl -H 'Content-Type: text/csv' --data-binary @tonight.csv \
//	     'localhost:8080/v1/models/engines/audit?workers=4'
//
//	# stream a warehouse-scale batch: findings come back as NDJSON while
//	# the upload is still in flight, server memory stays bounded
//	curl -NT warehouse.csv -H 'Content-Type: text/csv' \
//	     'localhost:8080/v1/models/engines/audit/stream?workers=4&top=100'
//
//	# audit a single record as JSON
//	curl -H 'Content-Type: application/json' \
//	     -d '{"row":["404","911","01","M111","STU","W202","2151","1999-04-07"]}' \
//	     localhost:8080/v1/models/engines/audit
//
//	# continuous monitoring: every audit feeds windowed quality snapshots
//	# and drift detection against the model's induction-time baseline
//	curl localhost:8080/v1/models/engines/quality
//
//	# close the loop: on drift, re-induce from recently audited rows in a
//	# background worker (audits keep being served) and publish the next
//	# model version automatically
//	auditd -dir ./auditd-data -auto-reinduce -monitor-window 2048
//
// Scale-out: every auditd is a capable shard worker (it always serves the
// shard-scoring and model-replication routes). An auditd becomes a
// coordinator when handed a worker list — buffered audits are then split
// into shards, scored across the worker processes and merged, with model
// versions replicated to workers on demand:
//
//	# two plain workers + one coordinator
//	auditd -addr :8081 -dir ./w1 &
//	auditd -addr :8082 -dir ./w2 &
//	auditd -addr :8080 -dir ./auditd-data \
//	       -coordinator http://localhost:8081,http://localhost:8082
//
//	# batches now fan out; ?local=1 forces in-process scoring
//	curl -H 'Content-Type: text/csv' --data-binary @tonight.csv \
//	     localhost:8080/v1/models/engines/audit
//
// Tune the fan-out with -shards, -shard-strategy (range or hash),
// -shard-chunk and -shard-retries; GET /v1/shard/workers reports the
// active configuration.
//
// Monitoring state — quality snapshots, lifecycle events, drift-detector
// state and the re-induction reservoir — is crash-durable: it persists
// atomically under -monitor-state (default <dir>/.state) on every sealed
// window and on graceful shutdown, and is reloaded at the next boot, so
// GET /v1/models/{name}/quality history survives restarts.
//
// Observability (both on by default):
//
//	# Prometheus text exposition: rows scored, suspicious rates,
//	# per-attribute deviations, drift detectors, re-induction outcomes,
//	# registry cache and per-route request/latency series
//	curl localhost:8080/metrics
//
//	# embedded quality dashboard: p-chart and I-MR control charts over
//	# the monitoring windows, drift annotations, lifecycle log
//	open localhost:8080/dashboard
//
// Disable with -metrics=false / -dashboard=false.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/monitor"
	"dataaudit/internal/registry"
	"dataaudit/internal/serve"
	"dataaudit/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dir      = flag.String("dir", "./auditd-data", "registry directory (created if missing)")
		workers  = flag.Int("workers", 0, "default scoring pool size (0 = NumCPU)")
		cache    = flag.Int("cache", 8, "number of models kept resident")
		maxBody  = flag.Int64("max-body-mb", 64, "request body limit in MiB (buffered endpoints; the streaming endpoint is bounded by -max-batch-rows instead)")
		maxRows  = flag.Int("max-batch-rows", 1_000_000, "row limit per audit request")
		drainFor = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain timeout")
		chunk    = flag.Int("stream-chunk", 1024, "default scoring-chunk size of the streaming audit endpoint")
		topK     = flag.Int("stream-top", 1000, "default ranking depth of the streaming audit summary")

		coordinator   = flag.String("coordinator", "", "comma-separated worker base URLs; non-empty enables coordinator mode (buffered audits are sharded across these auditd processes)")
		shards        = flag.Int("shards", 0, "shards per audit in coordinator mode (0 = one per worker)")
		shardStrategy = flag.String("shard-strategy", "range", "row-to-shard assignment: range (contiguous) or hash (by row signature)")
		shardChunk    = flag.Int("shard-chunk", 0, "rows per wire chunk when shipping shards (0 = default)")
		shardRetries  = flag.Int("shard-retries", 2, "re-dispatch attempts per shard after the first failure")

		metrics   = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics and instrument every route with request/latency series")
		dashboard = flag.Bool("dashboard", true, "serve the embedded quality dashboard (control charts over monitoring windows) at GET /dashboard")

		monWindow  = flag.Int64("monitor-window", 1024, "quality-monitoring window size in audited rows")
		driftDelta = flag.Float64("drift-delta", 0.10, "drift threshold: window suspicious-rate excess over the model's baseline")
		nullDelta  = flag.Float64("null-delta", 0.05, "completeness-drift threshold: per-attribute window null-rate excess over the baseline null rate (reported, never re-induced)")
		phLambda   = flag.Float64("drift-ph-lambda", 0.25, "Page-Hinkley alarm threshold over the window suspicious-rate series")
		reinduce   = flag.Bool("auto-reinduce", false, "on drift, re-induce the model from a reservoir of recently audited rows and publish the next version (runs in a background worker; audits are never blocked)")
		reservoir  = flag.Int("reservoir-rows", 4096, "row capacity of the re-induction reservoir sample")
		partialRe  = flag.Bool("partial-reinduce", true, "when the per-attribute detectors attribute a drift to specific attributes, rebuild only those and share the rest with the predecessor model; false forces every re-induction to run from scratch")
		reMode     = flag.String("reinduce-mode", "incremental", "how a partial re-induction rebuilds a drifted attribute: incremental (update the previous classifier over frozen discretization) or full (re-derive that attribute from scratch)")
		monState   = flag.String("monitor-state", "", "directory for crash-durable monitoring state (snapshots, events, drift state, reservoir); empty = <dir>/.state under the registry, \"disabled\" = keep monitoring state in memory only")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "auditd ", log.LstdFlags)

	switch audit.ReinduceMode(*reMode) {
	case audit.ReinduceIncremental, audit.ReinduceFull:
	default:
		logger.Fatalf("-reinduce-mode %q: want incremental or full", *reMode)
	}

	reg, err := registry.Open(*dir, registry.WithCacheSize(*cache))
	if err != nil {
		logger.Fatal(err)
	}

	var opts []serve.Option
	opts = append(opts,
		serve.WithLogger(logger),
		serve.WithMaxBodyBytes(*maxBody<<20),
		serve.WithMaxBatchRows(*maxRows),
		serve.WithStreamChunkSize(*chunk),
		serve.WithStreamTopK(*topK),
		serve.WithMetrics(*metrics),
		serve.WithDashboard(*dashboard),
		serve.WithMonitorOptions(monitor.Options{
			WindowRows:             *monWindow,
			DriftDelta:             *driftDelta,
			NullDelta:              *nullDelta,
			PHLambda:               *phLambda,
			AutoReinduce:           *reinduce,
			ReservoirRows:          *reservoir,
			DisablePartialReinduce: !*partialRe,
			ReinduceMode:           *reMode,
			StateDir:               *monState,
			Logger:                 logger,
		}),
	)
	if *workers > 0 {
		opts = append(opts, serve.WithWorkers(*workers))
	}
	if *coordinator != "" {
		strategy, err := shard.ParseStrategy(*shardStrategy)
		if err != nil {
			logger.Fatalf("-shard-strategy: %v", err)
		}
		shardOpts := shard.Options{
			Workers:   strings.Split(*coordinator, ","),
			Shards:    *shards,
			Strategy:  strategy,
			ChunkRows: *shardChunk,
			Retries:   *shardRetries,
		}
		// Validate up front: serve.New has no error path, so a bad worker
		// set should kill the boot here, not silently disable coordination.
		if _, err := shard.New(shardOpts); err != nil {
			logger.Fatalf("-coordinator: %v", err)
		}
		opts = append(opts, serve.WithCoordinator(shardOpts))
	}
	srv := serve.New(reg, opts...)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (registry %s)", *addr, *dir)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down, draining for up to %s", *drainFor)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("forced shutdown: %v", err)
		}
		// With the HTTP server drained, let in-flight re-inductions land
		// and persist the final monitoring state so quality history
		// survives the restart.
		if err := srv.Close(); err != nil {
			logger.Printf("persisting monitoring state: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "auditd: stopped")
}
