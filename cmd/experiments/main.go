// Command experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the ablation and algorithm-selection studies that
// DESIGN.md indexes as E1–E8:
//
//	fig3      E1: sensitivity vs. number of records (Figure 3)
//	fig4      E2: sensitivity vs. number of rules (Figure 4)
//	fig5      E3: sensitivity vs. pollution factor (Figure 5)
//	spec      E4: specificity ≈ 99 % across all settings
//	qoc       E5: quality of correction correlates with sensitivity
//	quis      E6: the §6.2 QUIS engine-composition audit
//	select    E7: classifier-family comparison (algorithm selection)
//	ablation  E8: effect of each §5.4 C4.5 adjustment
//	dedup     E9: duplicate detection vs. duplicator probability
//	complete  E10: completeness dimension vs. event-replay ground truth
//
// Use -scale to shrink record counts for quick runs; shapes (who wins,
// where the jumps fall) are preserved down to about -scale 0.2.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"dataaudit/internal/assoc"
	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/c45"
	"dataaudit/internal/dedup"
	"dataaudit/internal/evalx"
	"dataaudit/internal/mlcore"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
	"dataaudit/internal/stats"
	"dataaudit/internal/tdg"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: fig3,fig4,fig5,spec,qoc,quis,select,ablation,dedup,complete or all")
	seed := flag.Int64("seed", 2003, "base random seed")
	scale := flag.Float64("scale", 1.0, "record-count scale factor (1.0 = paper scale)")
	flag.Parse()

	wanted := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	all := wanted["all"]

	type experiment struct {
		name string
		fn   func(seed int64, scale float64) error
	}
	experiments := []experiment{
		{"fig3", fig3},
		{"fig4", fig4},
		{"fig5", fig5},
		{"spec", spec},
		{"qoc", qoc},
		{"quis", quisExperiment},
		{"select", selection},
		{"ablation", ablation},
		{"dedup", dedupExperiment},
		{"complete", completenessExperiment},
	}
	ranAny := false
	for _, e := range experiments {
		if !all && !wanted[e.name] {
			continue
		}
		ranAny = true
		fmt.Printf("\n================  %s  ================\n", e.name)
		if err := e.fn(*seed, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "no experiment matched -run=%s\n", *run)
		os.Exit(2)
	}
}

func scaled(xs []float64, scale float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		v := x * scale
		if v < 300 {
			v = 300
		}
		out[i] = float64(int(v))
	}
	return out
}

// fig3 reproduces Figure 3: "Influence of number of records on sensitivity".
func fig3(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	points, err := evalx.RecordsSweep(base, scaled([]float64{1000, 2000, 4000, 6000, 8000, 10000, 15000, 20000}, scale), 3)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3 — sensitivity vs. number of records (minConf = 0.8)")
	fmt.Println(evalx.RenderPoints("records", points))
	fmt.Println("paper: sensitivity rises with record count towards ≈ 0.3, with a jump")
	fmt.Println("       near 6000 records caused by the minimum-error-confidence limit.")
	return nil
}

// fig4 reproduces Figure 4: "Influence of number of rules on sensitivity".
func fig4(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	base.DataGen.NumRecords = int(10000 * scale)
	if base.DataGen.NumRecords < 1000 {
		base.DataGen.NumRecords = 1000
	}
	points, err := evalx.RulesSweep(base, []float64{10, 25, 50, 75, 100, 150, 200}, 3)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4 — sensitivity vs. number of rules (structure strength)")
	fmt.Println(evalx.RenderPoints("rules", points))
	fmt.Println("paper: more rules make errors easier to identify, but sensitivity")
	fmt.Println("       saturates around 0.3 — decision-tree rules cannot express")
	fmt.Println("       every TDG-rule dependency.")
	return nil
}

// fig5 reproduces Figure 5: "Influence of pollution factor on sensitivity".
func fig5(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	base.DataGen.NumRecords = int(10000 * scale)
	if base.DataGen.NumRecords < 1000 {
		base.DataGen.NumRecords = 1000
	}
	points, err := evalx.PollutionSweep(base, []float64{0.5, 1, 2, 3, 4, 6, 8, 12, 16}, 3)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5 — sensitivity vs. pollution factor")
	fmt.Println(evalx.RenderPoints("factor", points))
	fmt.Println("paper: the more corrupted the table, the fewer valid rules can be")
	fmt.Println("       induced; sensitivity declines, dropping once pollution makes")
	fmt.Println("       partitions too impure for the minimum error confidence.")
	fmt.Println("note: our base pollution rate is lower than the paper's, so the")
	fmt.Println("      decline sets in at a higher factor — the sweep extends to 16")
	fmt.Println("      to show the same mechanism.")
	return nil
}

// spec verifies the §6.1 claim: specificity ≈ 99 % in all settings.
func spec(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	var rows [][]string
	worst := 1.0
	for _, setting := range []struct {
		name   string
		modify func(cfg *evalx.Config)
	}{
		{"base", func(cfg *evalx.Config) {}},
		{"records=2000", func(cfg *evalx.Config) { cfg.DataGen.NumRecords = 2000 }},
		{"rules=25", func(cfg *evalx.Config) { cfg.RuleGen.NumRules = 25 }},
		{"rules=200", func(cfg *evalx.Config) { cfg.RuleGen.NumRules = 200 }},
		{"pollution x2", func(cfg *evalx.Config) { cfg.Plan = cfg.Plan.Scale(2) }},
		{"pollution x4", func(cfg *evalx.Config) { cfg.Plan = cfg.Plan.Scale(4) }},
	} {
		cfg := base
		cfg.DataGen.NumRecords = int(float64(cfg.DataGen.NumRecords) * scale)
		if cfg.DataGen.NumRecords < 1000 {
			cfg.DataGen.NumRecords = 1000
		}
		setting.modify(&cfg)
		res, err := evalx.Run(cfg)
		if err != nil {
			return err
		}
		if res.Specificity() < worst {
			worst = res.Specificity()
		}
		rows = append(rows, []string{
			setting.name,
			fmt.Sprintf("%.4f", res.Specificity()),
			fmt.Sprintf("%.4f", res.Sensitivity()),
			fmt.Sprintf("%d", res.Confusion.FP),
		})
	}
	fmt.Println("E4 — specificity across parameter settings (minConf = 0.8)")
	fmt.Println(evalx.FormatTable([]string{"setting", "specificity", "sensitivity", "false positives"}, rows))
	fmt.Printf("worst-case specificity: %.4f (paper: ≈ 0.99 in all settings)\n", worst)

	// Per-corruption-kind detection on the base setting — quantifies the
	// paper's remark that only deviation-shaped errors are findable.
	cfg := base
	cfg.DataGen.NumRecords = int(float64(base.DataGen.NumRecords) * scale)
	if cfg.DataGen.NumRecords < 1000 {
		cfg.DataGen.NumRecords = 1000
	}
	res, err := evalx.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nper-corruption-kind sensitivity (base setting):")
	fmt.Println(evalx.RenderBreakdown(res.Breakdown))
	return nil
}

// qoc verifies the §6.1 claim that quality of correction is highly
// correlated with sensitivity.
func qoc(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	var sens, qocs, specs []float64
	collect := func(points []evalx.Point) {
		for _, p := range points {
			sens = append(sens, p.Sensitivity)
			qocs = append(qocs, p.QoC)
			specs = append(specs, p.Specificity)
		}
	}
	p1, err := evalx.RecordsSweep(base, scaled([]float64{2000, 6000, 10000, 15000}, scale), 2)
	if err != nil {
		return err
	}
	collect(p1)
	base2 := evalx.BaseConfig(seed + 1)
	base2.DataGen.NumRecords = int(10000 * scale)
	if base2.DataGen.NumRecords < 1000 {
		base2.DataGen.NumRecords = 1000
	}
	p2, err := evalx.RulesSweep(base2, []float64{25, 75, 150}, 2)
	if err != nil {
		return err
	}
	collect(p2)
	p3, err := evalx.PollutionSweep(base2, []float64{0.5, 1.5, 3}, 2)
	if err != nil {
		return err
	}
	collect(p3)

	var rows [][]string
	for i := range sens {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%.4f", sens[i]),
			fmt.Sprintf("%.4f", qocs[i]),
			fmt.Sprintf("%.4f", specs[i]),
		})
	}
	fmt.Println("E5 — sensitivity vs. quality of correction across sweep points")
	fmt.Println(evalx.FormatTable([]string{"point", "sensitivity", "qoc", "specificity"}, rows))
	fmt.Printf("Pearson r (all points) = %.3f\n", stats.Pearson(sens, qocs))
	// The paper's "highly correlated" claim holds where false positives are
	// negligible: a correction applied to a false positive damages a
	// correct record (the b term of the §4.3 matrix), which anticorrelates
	// qoc with flag volume. Restrict to the high-specificity regime:
	var hs, hq []float64
	for i := range sens {
		if specs[i] >= 0.995 {
			hs = append(hs, sens[i])
			hq = append(hq, qocs[i])
		}
	}
	if len(hs) >= 3 {
		fmt.Printf("Pearson r (specificity >= 0.995, %d points) = %.3f\n", len(hs), stats.Pearson(hs, hq))
	}
	fmt.Println("(paper: \"the quality of correction is highly correlated to sensitivity\")")
	return nil
}

// quisExperiment reproduces §6.2: the engine-composition audit.
func quisExperiment(seed int64, scale float64) error {
	n := int(200000 * scale)
	if n < 30000 {
		n = 30000
	}
	tab, err := quis.Generate(quis.Params{NumRecords: n, Seed: seed})
	if err != nil {
		return err
	}
	start := time.Now()
	model, err := audit.Induce(tab.Data, audit.Options{MinConfidence: 0.8})
	if err != nil {
		return err
	}
	res := model.AuditTable(tab.Data)
	elapsed := time.Since(start)
	sus := res.Suspicious()

	fmt.Printf("E6 — QUIS engine-composition audit (%d records, 8 attributes)\n", tab.Data.NumRows())
	fmt.Printf("total audit time: %v (induction %v + checking %v)\n", elapsed, model.InduceTime, res.CheckTime)
	fmt.Printf("suspicious records: %d (paper: ≈ 6000 of 200000 in 21 min on an Athlon 900)\n", len(sus))
	fmt.Printf("seeded deviations:  %d\n", tab.SeededDeviations)

	headlineID := tab.Data.ID(tab.PaperDeviationRows[0])
	for i, rep := range sus {
		if rep.ID == headlineID {
			fmt.Printf("paper's BRV=404/GBM=911 deviation: rank %d, error confidence %.2f%% (paper: rank 1, 99.95%%)\n",
				i+1, rep.ErrorConf*100)
			break
		}
	}
	fmt.Println("\ntop 5 suspicious records:")
	for i := 0; i < 5 && i < len(sus); i++ {
		fmt.Printf("  %d. id=%-7d %s\n", i+1, sus[i].ID, model.DescribeFinding(sus[i].Best))
	}

	// Render the strongest induced GBM rules in the paper's §6.2 style.
	fmt.Println("\nstrongest induced rules for GBM:")
	gbmTrainer := &audittree.Trainer{Opts: audittree.Options{MinConfidence: 0.8}}
	ins := mlcore.NewInstances(tab.Data, []int{0, 2, 3, 4, 5, 6, 7}, tab.Data.Schema().Attr(1).NumValues(), func(r int) int {
		v := tab.Data.Get(r, 1)
		if v.IsNull() {
			return -1
		}
		return v.NomIdx()
	})
	rs, err := gbmTrainer.TrainRuleSet(ins)
	if err != nil {
		return err
	}
	schema := tab.Data.Schema()
	for i, rule := range rs.Rules {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s  (expErrConf %.4f)\n",
			rule.Render(schema, func(c int) string { return "GBM = " + schema.Attr(1).Domain[c] }), rule.ExpErrConf)
	}
	return nil
}

// selection reproduces the §5 algorithm-selection step (E7): the same
// benchmark for every classifier family, plus the Hipp association-rule
// scoring as the related-work baseline.
func selection(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	base.DataGen.NumRecords = int(6000 * scale)
	if base.DataGen.NumRecords < 1000 {
		base.DataGen.NumRecords = 1000
	}
	var rows [][]string
	for _, kind := range []audit.InducerKind{
		audit.InducerC45Audit, audit.InducerC45, audit.InducerID3,
		audit.InducerNaiveBayes, audit.InducerOneR, audit.InducerPrism, audit.InducerKNN,
	} {
		cfg := base
		cfg.Audit.Inducer = kind
		start := time.Now()
		res, err := evalx.Run(cfg)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			string(kind),
			fmt.Sprintf("%.4f", res.Sensitivity()),
			fmt.Sprintf("%.4f", res.Specificity()),
			fmt.Sprintf("%.4f", res.QualityOfCorrection()),
			time.Since(start).Round(time.Millisecond).String(),
		})
	}
	// Hipp-style association-rule baseline (record-level scoring).
	row, err := assocBaseline(base)
	if err != nil {
		return err
	}
	rows = append(rows, row)

	fmt.Println("E7 — algorithm selection: multiple-classification benchmark per family")
	fmt.Println(evalx.FormatTable([]string{"inducer", "sensitivity", "specificity", "qoc", "wall time"}, rows))
	fmt.Println("paper: the evaluation of instance-based, naive Bayes, rule-inducer and")
	fmt.Println("       decision-tree classifiers \"led to the decision to base our")
	fmt.Println("       structure inducer and deviation detector on ... C4.5\".")
	return nil
}

// assocBaseline runs generate → pollute → mine → score with the Hipp
// confidence-sum scoring.
func assocBaseline(cfg evalx.Config) ([]string, error) {
	rules, err := tdg.GenerateRuleSet(cfg.Schema, cfg.RuleGen, randFor(cfg.Seed))
	if err != nil {
		return nil, err
	}
	clean, err := tdg.Generate(cfg.Schema, rules, cfg.DataGen, randFor(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	dirty, log := pollute.Run(clean, cfg.Plan, randFor(cfg.Seed+2))
	start := time.Now()
	model, err := assoc.Mine(dirty, assoc.Options{MinSupport: 0.02, MinConfidence: 0.9})
	if err != nil {
		return nil, err
	}
	corrupted := log.CorruptedIDs()
	var conf evalx.Confusion
	for r := 0; r < dirty.NumRows(); r++ {
		score := model.Score(dirty.Row(r))
		flagged := score >= 0.9
		bad := corrupted[dirty.ID(r)]
		switch {
		case bad && flagged:
			conf.TP++
		case bad && !flagged:
			conf.FN++
		case !bad && flagged:
			conf.FP++
		default:
			conf.TN++
		}
	}
	return []string{
		"assoc (Hipp)",
		fmt.Sprintf("%.4f", conf.Sensitivity()),
		fmt.Sprintf("%.4f", conf.Specificity()),
		"n/a",
		time.Since(start).Round(time.Millisecond).String(),
	}, nil
}

// ablation isolates each §5.4 adjustment (E8).
func ablation(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	base.DataGen.NumRecords = int(8000 * scale)
	if base.DataGen.NumRecords < 1000 {
		base.DataGen.NumRecords = 1000
	}
	minInst := stats.MinInstForConfidence(0.8, 0.95)
	variants := []struct {
		name    string
		trainer mlcore.Trainer
	}{
		{"c4.5 unadjusted (pess. pruning)", &c45.Trainer{Opts: c45.Options{UseGainRatio: true, Prune: true}}},
		{"c4.5 + minInst pre-pruning", &c45.Trainer{Opts: c45.Options{UseGainRatio: true, Prune: true, MinInst: float64(minInst)}}},
		{"c4.5 + expErrConf pruning", &c45.Trainer{Opts: c45.Options{UseGainRatio: true, ExpErrConfPrune: true, MinErrConf: 0.8}}},
		{"full audit tree (+rule filter)", nil}, // default inducer
	}
	var rows [][]string
	for _, v := range variants {
		cfg := base
		cfg.Audit.Trainer = v.trainer
		start := time.Now()
		res, err := evalx.Run(cfg)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.4f", res.Sensitivity()),
			fmt.Sprintf("%.4f", res.Specificity()),
			fmt.Sprintf("%.4f", res.QualityOfCorrection()),
			time.Since(start).Round(time.Millisecond).String(),
		})
	}
	fmt.Println("E8 — ablation of the §5.4 C4.5 adjustments")
	fmt.Println(evalx.FormatTable([]string{"variant", "sensitivity", "specificity", "qoc", "wall time"}, rows))
	fmt.Println("paper motivation: the unadjusted inducer builds insignificant subtrees")
	fmt.Println("and prunes too little; the adjustments trade a little sensitivity on")
	fmt.Println("weak patterns for the specificity a screening tool needs.")
	return nil
}

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// dedupExperiment (E9) sweeps duplicate detection against the duplicator's
// logged ground truth, exact and near (one perturbed attribute per copy).
func dedupExperiment(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	base.DataGen.NumRecords = int(4000 * scale)
	if base.DataGen.NumRecords < 1000 {
		base.DataGen.NumRecords = 1000
	}
	probs := []float64{0.005, 0.01, 0.02, 0.05}
	exact, err := evalx.DedupSweep(base, probs, 0, 3, dedup.Options{})
	if err != nil {
		return err
	}
	fmt.Println("E9 — duplicate detection vs. duplicator probability")
	fmt.Println("exact copies (fuzz = 0):")
	fmt.Println(evalx.RenderDedupPoints(exact))
	near, err := evalx.DedupSweep(base, probs, 1.0, 3, dedup.Options{})
	if err != nil {
		return err
	}
	fmt.Println("near duplicates (every copy perturbed in one attribute):")
	fmt.Println(evalx.RenderDedupPoints(near))
	fmt.Println("floors committed in CI: exact sensitivity = 1.0, near ≥ 0.9,")
	fmt.Println("specificity ≥ 0.99 (internal/evalx dedupeval tests).")
	return nil
}

// completenessExperiment (E10) compares the measured per-attribute null
// counts with an event replay of the pollution log.
func completenessExperiment(seed int64, scale float64) error {
	base := evalx.BaseConfig(seed)
	base.DataGen.NumRecords = int(4000 * scale)
	if base.DataGen.NumRecords < 1000 {
		base.DataGen.NumRecords = 1000
	}
	points, err := evalx.CompletenessSweep(base, []float64{0, 0.5, 1, 2, 5, 10}, 0.002, 3)
	if err != nil {
		return err
	}
	fmt.Println("E10 — completeness dimension vs. event-replay ground truth")
	fmt.Println(evalx.RenderCompletenessPoints(points))
	fmt.Println("max-count-err is the largest |measured − replayed| null count over")
	fmt.Println("all attributes and reps — 0 means the popcount dimension trackers")
	fmt.Println("agree with the logged ground truth bit for bit.")
	return nil
}
