// Command tdgen is the artificial test data generator of §4.1: it reads a
// schema definition, draws a natural rule set (Definitions 4–6) and emits
// records that follow the rules (§4.1.4).
//
//	tdgen -schema engine.schema -records 10000 -rules 100 \
//	      -out clean.csv -rulesout rules.txt -seed 2003
//
// The schema file format (one attribute per line):
//
//	BRV  nominal 404,501,600
//	KM   numeric 0 200000
//	PROD date    1995-01-01 2002-12-31
//
// -quis switches to the paper's §6 QUIS vehicle-quality sample instead of
// rule-drawn data: a deterministic replica of the quality-information
// system relation (the fixture the benchmarks and e2e suites audit),
// scaled to -records rows (minimum 30000):
//
//	tdgen -quis -records 55000 -seed 2003 -out quis.csv -schemaout quis.schema
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dataaudit/internal/dataset"
	"dataaudit/internal/quis"
	"dataaudit/internal/tdg"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "schema definition file (required)")
		records    = flag.Int("records", 10000, "number of records to generate")
		rules      = flag.Int("rules", 100, "number of natural rules to generate")
		maxAtoms   = flag.Int("maxatoms", 3, "max atomic subformulae per composite")
		maxDepth   = flag.Int("maxdepth", 2, "max formula nesting depth")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "clean.csv", "output CSV file")
		rulesOut   = flag.String("rulesout", "", "optional file for the generated rules (human readable)")
		useQuis    = flag.Bool("quis", false, "emit the paper's QUIS vehicle-quality sample instead of rule-drawn data (-schema/-rules ignored)")
		schemaOut  = flag.String("schemaout", "", "with -quis: also write the QUIS schema definition here")
	)
	flag.Parse()
	if *useQuis {
		sample, err := quis.Generate(quis.Params{NumRecords: *records, Seed: *seed})
		if err != nil {
			fail("%v", err)
		}
		if err := dataset.WriteCSVFile(*out, sample.Data); err != nil {
			fail("writing %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d QUIS records to %s\n", sample.Data.NumRows(), *out)
		if *schemaOut != "" {
			f, err := os.Create(*schemaOut)
			if err != nil {
				fail("%v", err)
			}
			if err := dataset.WriteSchemaText(f, sample.Data.Schema()); err != nil {
				fail("writing %s: %v", *schemaOut, err)
			}
			if err := f.Close(); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote QUIS schema to %s\n", *schemaOut)
		}
		return
	}
	if *schemaPath == "" {
		fail("missing -schema")
	}
	schema, err := dataset.ParseSchemaFile(*schemaPath)
	if err != nil {
		fail("%v", err)
	}
	rng := rand.New(rand.NewSource(*seed))

	ruleSet, err := tdg.GenerateRuleSet(schema, tdg.RuleGenParams{
		NumRules: *rules,
		MaxAtoms: *maxAtoms,
		MaxDepth: *maxDepth,
	}, rng)
	if err != nil {
		fail("rule generation: %v", err)
	}
	fmt.Fprintf(os.Stderr, "generated %d natural rules\n", len(ruleSet))

	table, err := tdg.Generate(schema, ruleSet, tdg.DataGenParams{NumRecords: *records}, rng)
	if err != nil {
		fail("data generation: %v", err)
	}
	if err := dataset.WriteCSVFile(*out, table); err != nil {
		fail("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", table.NumRows(), *out)

	if *rulesOut != "" {
		f, err := os.Create(*rulesOut)
		if err != nil {
			fail("%v", err)
		}
		for _, r := range ruleSet {
			fmt.Fprintln(f, r.Render(schema))
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote rules to %s\n", *rulesOut)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tdgen: "+format+"\n", args...)
	os.Exit(1)
}
