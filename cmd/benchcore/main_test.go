package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dataaudit/internal/benchutil"
)

// baseReport is a miniature committed baseline.
func baseReport() Report {
	return Report{
		GeneratedBy: "cmd/benchcore",
		Runs: []Run{
			{Name: "checkrow", Rows: 30000, Workers: 1, NsPerRow: 160, AllocsPerRow: 0, Suspicious: 1425, SteadyState: true},
			{Name: "batch", Rows: 30000, Workers: 4, NsPerRow: 190, AllocsPerRow: 0.08, Suspicious: 1425},
			{Name: "stream", Rows: 30000, Workers: 4, NsPerRow: 195, AllocsPerRow: 0.08, Suspicious: 1425},
		},
	}
}

func TestGatePassesOnIdenticalReport(t *testing.T) {
	base := baseReport()
	if v := gateReports(base, base, 15, 3, allChecks()); len(v) != 0 {
		t.Fatalf("identical reports must pass, got violations: %v", v)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	for i := range cand.Runs {
		cand.Runs[i].NsPerRow *= 1.10 // 10% slower: inside the 15% budget
	}
	if v := gateReports(base, cand, 15, 3, allChecks()); len(v) != 0 {
		t.Fatalf("10%% regression must pass a 15%% gate, got: %v", v)
	}
}

// TestGateFailsOnSyntheticNsRegression is the acceptance check: a 20%
// ns/row regression on the scoring path must fail the 15% gate.
func TestGateFailsOnSyntheticNsRegression(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	for i := range cand.Runs {
		cand.Runs[i].NsPerRow *= 1.20
	}
	v := gateReports(base, cand, 15, 3, allChecks())
	if len(v) != len(cand.Runs) {
		t.Fatalf("20%% regression must fail every run, got %d violations: %v", len(v), v)
	}
	for _, msg := range v {
		if !strings.Contains(msg, "ns/row regressed") {
			t.Fatalf("unexpected violation message: %q", msg)
		}
	}
}

func TestGateFailsOnSteadyStateAllocation(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	cand.Runs[0].AllocsPerRow = 0.001 // any allocation on the 0-alloc path
	v := gateReports(base, cand, 15, 3, allChecks())
	if len(v) == 0 {
		t.Fatal("steady-state allocation must fail the gate")
	}
	if !strings.Contains(v[0], "steady-state") {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestGateFailsOnAllocIncrease(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	cand.Runs[1].AllocsPerRow = 0.2 // batch path allocates more per row
	v := gateReports(base, cand, 15, 3, allChecks())
	if len(v) != 1 || !strings.Contains(v[0], "allocs/row increased") {
		t.Fatalf("alloc increase must fail the gate, got: %v", v)
	}
}

func TestGateFailsOnSuspiciousDrift(t *testing.T) {
	base := baseReport()
	cand := baseReport()
	cand.Runs[2].Suspicious = 1400
	v := gateReports(base, cand, 15, 3, allChecks())
	if len(v) != 1 || !strings.Contains(v[0], "suspicious count changed") {
		t.Fatalf("output drift must fail the gate, got: %v", v)
	}
}

// TestGateChecksAreSelectable pins the hermetic-gate split: with -checks
// ns a candidate that only regresses allocations passes (and vice
// versa), so bench_gate.sh can gate ns/row against a same-machine
// merge-base measurement and allocations against the committed baseline
// without either check masking the other.
func TestGateChecksAreSelectable(t *testing.T) {
	base := baseReport()
	slow := baseReport()
	for i := range slow.Runs {
		slow.Runs[i].NsPerRow *= 1.5
	}
	leaky := baseReport()
	leaky.Runs[0].AllocsPerRow = 0.5 // steady-state allocation
	drifted := baseReport()
	drifted.Runs[2].Suspicious = 7

	cases := []struct {
		name   string
		checks gateChecks
		cand   Report
		fails  bool
	}{
		{"ns-only catches slowdown", gateChecks{ns: true}, slow, true},
		{"ns-only ignores allocation", gateChecks{ns: true}, leaky, false},
		{"ns-only ignores output drift", gateChecks{ns: true}, drifted, false},
		{"alloc-only catches allocation", gateChecks{alloc: true}, leaky, true},
		{"alloc-only ignores slowdown", gateChecks{alloc: true}, slow, false},
		{"suspicious-only catches drift", gateChecks{suspicious: true}, drifted, true},
		{"suspicious-only ignores slowdown", gateChecks{suspicious: true}, slow, false},
		{"alloc+suspicious ignores slowdown", gateChecks{alloc: true, suspicious: true}, slow, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := gateReports(base, tc.cand, 15, 3, tc.checks)
			if tc.fails && len(v) == 0 {
				t.Fatalf("checks %s must fail this candidate", tc.checks)
			}
			if !tc.fails && len(v) != 0 {
				t.Fatalf("checks %s must ignore this candidate, got: %v", tc.checks, v)
			}
		})
	}
}

// maintReport is a baseline that also carries the model-maintenance
// surfaces, with incremental re-induction comfortably above the 3x floor.
func maintReport() Report {
	rep := baseReport()
	rep.Runs = append(rep.Runs,
		Run{Name: "induce", Rows: 30000, Workers: 1, NsPerRow: 75000, AllocsPerRow: 6},
		Run{Name: "reinduce", Rows: 30000, Workers: 1, NsPerRow: 3300, AllocsPerRow: 12},
	)
	return rep
}

// TestGateReinduceSpeedup pins the incremental-induction contract: the
// candidate's own induce/reinduce ratio must stay above the floor — a
// within-candidate check, so it needs no comparable baseline hardware —
// and a report measured before the maintenance surfaces existed is not
// retroactively failed.
func TestGateReinduceSpeedup(t *testing.T) {
	base := baseReport()
	good := maintReport()
	if v := gateReports(base, good, 15, 3, allChecks()); len(v) != 0 {
		t.Fatalf("22x speedup must pass a 3x floor, got: %v", v)
	}

	slow := maintReport()
	slow.Runs[len(slow.Runs)-1].NsPerRow = 30000 // only 2.5x faster than induce
	v := gateReports(base, slow, 15, 3, allChecks())
	if len(v) != 1 || !strings.Contains(v[0], "incremental re-induction only") {
		t.Fatalf("eroded speedup must fail the reinduce check, got: %v", v)
	}
	if v2 := gateReports(base, slow, 15, 3, gateChecks{alloc: true, suspicious: true}); len(v2) != 0 {
		t.Fatalf("reinduce check must be selectable, got: %v", v2)
	}
	if v3 := gateReports(base, slow, 15, 2, allChecks()); len(v3) != 0 {
		t.Fatalf("2.5x must pass a lowered 2x floor, got: %v", v3)
	}

	// Old candidate without maintenance surfaces: check disengages.
	if v := gateReports(maintReport(), baseReport(), 15, 3, allChecks()); len(v) != 0 {
		t.Fatalf("pre-maintenance candidate must not trip the reinduce check, got: %v", v)
	}
}

func TestParseChecks(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"all", "ns,alloc,suspicious,reinduce", false},
		{"ns", "ns", false},
		{"alloc,suspicious", "alloc,suspicious", false},
		{"reinduce", "reinduce", false},
		{" ns , alloc ", "ns,alloc", false},
		{"bogus", "", true},
		{"", "", true},
		{",", "", true},
	}
	for _, tc := range cases {
		c, err := parseChecks(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("parseChecks(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("parseChecks(%q): %v", tc.in, err)
		}
		if c.String() != tc.want {
			t.Fatalf("parseChecks(%q) = %s, want %s", tc.in, c, tc.want)
		}
	}
}

func TestWriteReportFailsOnUnwritablePath(t *testing.T) {
	rep := baseReport()
	err := benchutil.WriteJSON(rep, filepath.Join(t.TempDir(), "no", "such", "dir", "out.json"))
	if err == nil {
		t.Fatal("WriteJSON must fail when the output cannot be created")
	}
}

func TestReadReportRejectsNonReports(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x.json")
	if err := os.WriteFile(p, []byte(`{"runs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(p); err == nil {
		t.Fatal("an empty runs list must be rejected")
	}
	if _, err := readReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("a missing file must be rejected")
	}
}
