// Command benchcore measures the scoring core end-to-end and gates CI on
// the result. In measure mode it scores a deterministic generated table
// (QUIS sample + seeded pollution, the same fixture the audit benchmarks
// use) through the four scoring surfaces and writes BENCH_core.json:
//
//	go run ./cmd/benchcore -out BENCH_core.json
//
// The committed BENCH_core.json at the repo root is the performance
// baseline. In gate mode benchcore compares a candidate measurement
// against a baseline and exits non-zero on a regression — more than
// -max-ns-regress percent slower per row, any allocs-per-row increase on
// the steady-state (zero-allocation) scoring path, or a drifted
// suspicious count:
//
//	go run ./cmd/benchcore -gate BENCH_core.json -candidate new.json
//
// -checks restricts the gate to a subset of those checks. That is what
// makes the CI gate hermetic: scripts/bench_gate.sh measures the
// merge-base revision with this same tool in the same job and gates the
// machine-sensitive ns/row check against that same-machine number
// (-checks ns), while the machine-exact allocation and determinism
// checks gate against the committed BENCH_core.json
// (-checks alloc,suspicious).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"dataaudit/internal/audit"
	"dataaudit/internal/benchutil"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// Run is one measured scoring surface.
type Run struct {
	// Name identifies the surface: "checkrow" (steady-state per-record
	// scoring through a ScoreScratch), "checkchunk" (columnar
	// chunk-at-a-time scoring over prebuilt ColumnChunks — the kernel
	// cost with chunk fill excluded), "batch" (AuditTableParallel) or
	// "stream" (AuditStream).
	Name string `json:"name"`
	// Rows is the number of rows scored per benchmark operation.
	Rows int `json:"rows"`
	// Workers is the scoring pool size (1 for checkrow).
	Workers int `json:"workers"`
	// RowsPerSec is the end-to-end scoring throughput.
	RowsPerSec float64 `json:"rowsPerSec"`
	// NsPerRow is the inverse throughput the gate checks.
	NsPerRow float64 `json:"nsPerRow"`
	// AllocsPerRow and BytesPerRow are per-row heap allocation counts;
	// on the steady-state path AllocsPerRow must be exactly 0.
	AllocsPerRow float64 `json:"allocsPerRow"`
	BytesPerRow  float64 `json:"bytesPerRow"`
	// PeakHeapMB is the sampled max live heap above the pre-run baseline.
	PeakHeapMB float64 `json:"peakHeapMB"`
	// Suspicious is the suspicious-record count — a determinism check:
	// it must be identical across surfaces and machines.
	Suspicious int64 `json:"suspicious"`
	// SteadyState marks the allocation-free contract: the gate fails if
	// such a run ever allocates.
	SteadyState bool `json:"steadyState"`
}

// Report is the BENCH_core.json document.
type Report struct {
	GeneratedBy string `json:"generatedBy"`
	GoVersion   string `json:"goVersion"`
	NumCPU      int    `json:"numCPU"`
	TrainRows   int    `json:"trainRows"`
	Seed        int64  `json:"seed"`
	Runs        []Run  `json:"runs"`
}

func main() {
	var (
		out          = flag.String("out", "BENCH_core.json", "output file (- for stdout)")
		rows         = flag.Int("rows", 30000, "generated table size (also the induction sample; QUIS needs >= 30000)")
		workers      = flag.Int("workers", 4, "scoring workers for the batch and stream surfaces")
		chunkRows    = flag.Int("chunk", 4096, "rows per ColumnChunk for the checkchunk surface (the batch/stream routes use their built-in block size)")
		seed         = flag.Int64("seed", 2003, "generator seed (fixture is fully deterministic)")
		gate         = flag.String("gate", "", "baseline BENCH_core.json: compare -candidate against it instead of measuring")
		candidate    = flag.String("candidate", "", "candidate BENCH_core.json for -gate mode")
		maxNsRegress = flag.Float64("max-ns-regress", 15, "max tolerated ns/row regression in percent")
		minReSpeedup = flag.Float64("min-reinduce-speedup", 3, "minimum induce/reinduce ns-per-row ratio the candidate must hold (incremental re-induction this many times faster than a full induction)")
		checksFlag   = flag.String("checks", "all", "comma list of gate checks to run: ns (wall clock), alloc (steady-state + allocs/row), suspicious (output determinism), reinduce (incremental re-induction speedup, within-candidate); 'all' runs every check. scripts/bench_gate.sh splits them so ns gates against a same-machine merge-base measurement while alloc/suspicious/reinduce gate against the committed baseline")
	)
	flag.Parse()

	if *gate != "" {
		if *candidate == "" {
			fmt.Fprintln(os.Stderr, "benchcore: -gate requires -candidate")
			os.Exit(2)
		}
		checks, err := parseChecks(*checksFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcore: %v\n", err)
			os.Exit(2)
		}
		baseRep, err := readReport(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcore: %v\n", err)
			os.Exit(2)
		}
		candRep, err := readReport(*candidate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcore: %v\n", err)
			os.Exit(2)
		}
		// Wall-clock comparisons are only meaningful on comparable
		// machines; flag mismatches so a ns/row failure on foreign
		// hardware is read as "refresh the baseline", not "regression"
		// (the allocs/row and suspicious-count checks stay exact
		// regardless). scripts/bench_gate.sh avoids the problem entirely
		// by measuring the merge-base on the same machine and gating ns
		// only against that.
		if checks.ns && (baseRep.NumCPU != candRep.NumCPU || baseRep.GoVersion != candRep.GoVersion) {
			fmt.Fprintf(os.Stderr,
				"benchcore: WARNING: baseline measured on %s/%d-cpu, candidate on %s/%d-cpu — ns/row comparison may be hardware noise (see docs/benchmarks.md on refreshing the baseline)\n",
				baseRep.GoVersion, baseRep.NumCPU, candRep.GoVersion, candRep.NumCPU)
		}
		violations := gateReports(baseRep, candRep, *maxNsRegress, *minReSpeedup, checks)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchcore: GATE FAIL: %s\n", v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchcore: gate passed (%d runs, checks %s)\n",
			len(candRep.Runs), checks)
		return
	}

	rep := measure(*rows, *workers, *chunkRows, *seed)
	if err := benchutil.WriteJSON(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchcore: %v\n", err)
		os.Exit(1)
	}
}

// measure builds the deterministic fixture and benchmarks the four
// scoring surfaces plus the two model-maintenance surfaces (full
// induction vs incremental re-induction).
func measure(rows, workers, chunkRows int, seed int64) Report {
	fmt.Fprintf(os.Stderr, "benchcore: generating %d-row fixture (seed %d) and inducing model\n", rows, seed)
	dirty, perturbed, model := fixture(rows, seed)

	rep := Report{
		GeneratedBy: "cmd/benchcore",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		TrainRows:   model.TrainRows,
		Seed:        seed,
	}

	n := dirty.NumRows()

	// Steady-state per-record scoring: the zero-allocation contract.
	var susRow int64
	rep.Runs = append(rep.Runs, run("checkrow", n, 1, true, func(b *testing.B) {
		row := make([]dataset.Value, dirty.NumCols())
		scratch := audit.NewScoreScratch(model)
		sus := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				dirty.RowInto(r, row)
				if model.CheckRowScratch(row, scratch).Suspicious {
					sus++
				}
			}
		}
		susRow = sus / int64(b.N)
	}, func() int64 { return susRow }))

	// Columnar chunk-at-a-time scoring over prebuilt chunks: the kernel
	// the batch and stream routes drive, with the Table→chunk fill
	// excluded (the end-to-end batch/stream runs below include it). A
	// warm-up pass grows the scratch and populates the row-signature
	// memo so the measured loop holds the zero-allocation contract.
	var susChunk int64
	rep.Runs = append(rep.Runs, run("checkchunk", n, 1, true, func(b *testing.B) {
		var chunks []*dataset.ColumnChunk
		for lo := 0; lo < n; lo += chunkRows {
			hi := lo + chunkRows
			if hi > n {
				hi = n
			}
			ck := dataset.NewColumnChunk(dirty.Schema())
			dirty.ChunkInto(ck, lo, hi)
			chunks = append(chunks, ck)
		}
		scratch := audit.NewChunkScratch(model)
		scoreAll := func() int64 {
			sus, row := int64(0), int64(0)
			for _, ck := range chunks {
				reps := model.CheckChunk(ck, row, scratch)
				for j := range reps {
					if reps[j].Suspicious {
						sus++
					}
				}
				row += int64(ck.Rows())
			}
			return sus
		}
		susChunk = scoreAll() // warm-up: grow scratch, fill the memo
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			susChunk = scoreAll()
		}
	}, func() int64 { return susChunk }))

	// Whole-table parallel scoring (the auditd batch route).
	var susBatch int64
	rep.Runs = append(rep.Runs, run("batch", n, workers, false, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := model.AuditTableParallel(dirty, workers)
			susBatch = int64(res.NumSuspicious())
		}
	}, func() int64 { return susBatch }))

	// Bounded-memory streaming (the auditd stream route).
	var susStream int64
	rep.Runs = append(rep.Runs, run("stream", n, workers, false, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := model.AuditStream(dataset.NewTableSource(dirty), audit.StreamOptions{
				Workers: workers, TopK: 100,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchcore: stream failed: %v\n", err)
				os.Exit(1)
			}
			susStream = res.NumSuspicious
		}
	}, func() int64 { return susStream }))

	// Model maintenance: a full induction over the drifted table versus an
	// incremental re-induction of every modelled attribute from the
	// previous model (frozen discretization, count-patched / warm-started
	// classifiers, row-delta against the training table). The gate's
	// reinduce check holds their within-candidate ratio: incremental
	// maintenance must stay at least -min-reinduce-speedup times faster
	// than rebuilding from scratch.
	indOpts := audit.Options{MinConfidence: 0.8}
	rep.Runs = append(rep.Runs, run("induce", n, 1, false, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := audit.Induce(perturbed, indOpts); err != nil {
				fmt.Fprintf(os.Stderr, "benchcore: induce failed: %v\n", err)
				os.Exit(1)
			}
		}
	}, func() int64 { return 0 }))

	attrs := make([]int, len(model.Attrs))
	for i := range model.Attrs {
		attrs[i] = model.Attrs[i].Class
	}
	reOpts := audit.ReinduceOptions{Mode: audit.ReinduceIncremental, Prev: dirty}
	rep.Runs = append(rep.Runs, run("reinduce", n, 1, false, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.ReinduceAttrs(perturbed, attrs, reOpts); err != nil {
				fmt.Fprintf(os.Stderr, "benchcore: reinduce failed: %v\n", err)
				os.Exit(1)
			}
		}
	}, func() int64 { return 0 }))

	return rep
}

// run benchmarks one surface with a live-heap sampler and converts the
// per-op numbers to per-row.
func run(name string, rows, workers int, steady bool, bench func(*testing.B), suspicious func() int64) Run {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	mon := benchutil.StartHeapMonitor()
	res := testing.Benchmark(bench)
	peak := mon.Stop()
	if peak < before.HeapAlloc {
		peak = before.HeapAlloc
	}
	peak -= before.HeapAlloc // live heap above the resident fixture

	perRow := func(v float64) float64 { return v / float64(rows) }
	r := Run{
		Name:         name,
		Rows:         rows,
		Workers:      workers,
		RowsPerSec:   float64(rows) * float64(res.N) / res.T.Seconds(),
		NsPerRow:     perRow(float64(res.NsPerOp())),
		AllocsPerRow: perRow(float64(res.AllocsPerOp())),
		BytesPerRow:  perRow(float64(res.AllocedBytesPerOp())),
		PeakHeapMB:   float64(peak) / (1 << 20),
		Suspicious:   suspicious(),
		SteadyState:  steady,
	}
	fmt.Fprintf(os.Stderr, "benchcore: %-9s rows=%-7d workers=%d  %12.0f rows/s  %7.1f ns/row  %8.4f allocs/row  peak=%6.1f MB  suspicious=%d\n",
		name, rows, workers, r.RowsPerSec, r.NsPerRow, r.AllocsPerRow, r.PeakHeapMB, r.Suspicious)
	return r
}

// gateChecks selects which families of gate checks run — the hermetic CI
// gate splits them: wall-clock (ns) against a same-machine merge-base
// measurement, allocation and determinism against the committed baseline.
type gateChecks struct {
	ns         bool // ns/row regression (machine-sensitive)
	alloc      bool // steady-state zero-alloc + allocs/row increase (machine-exact)
	suspicious bool // suspicious-count determinism (machine-exact)
	reinduce   bool // induce/reinduce speedup ratio (within-candidate, machine-free)
}

func (c gateChecks) String() string {
	var parts []string
	if c.ns {
		parts = append(parts, "ns")
	}
	if c.alloc {
		parts = append(parts, "alloc")
	}
	if c.suspicious {
		parts = append(parts, "suspicious")
	}
	if c.reinduce {
		parts = append(parts, "reinduce")
	}
	return strings.Join(parts, ",")
}

// parseChecks parses the -checks flag value.
func parseChecks(s string) (gateChecks, error) {
	var c gateChecks
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "all":
			c = allChecks()
		case "ns":
			c.ns = true
		case "alloc":
			c.alloc = true
		case "suspicious":
			c.suspicious = true
		case "reinduce":
			c.reinduce = true
		case "":
		default:
			return c, fmt.Errorf("unknown check %q (want ns, alloc, suspicious, reinduce or all)", part)
		}
	}
	if !c.ns && !c.alloc && !c.suspicious && !c.reinduce {
		return c, fmt.Errorf("no checks selected in %q", s)
	}
	return c, nil
}

// allChecks is the full gate (the -checks default).
func allChecks() gateChecks {
	return gateChecks{ns: true, alloc: true, suspicious: true, reinduce: true}
}

// gateReports compares a candidate measurement against the baseline and
// returns the list of violations (empty: gate passes). The checks, each
// selectable via gateChecks:
//
//   - ns: ns/row must not regress by more than maxNsRegressPct percent;
//   - alloc: a steady-state run must not allocate at all, and no run's
//     allocs/row may exceed the baseline beyond 2% measurement noise
//     (allocation counts are near-deterministic, so any real increase is
//     a code change, not jitter);
//   - suspicious: the suspicious-record count must not drift (scoring
//     output is deterministic);
//   - reinduce: within the candidate alone, incremental re-induction must
//     stay at least minReinduceSpeedup times faster than a full induction
//     (both surfaces run on the same machine in the same measurement, so
//     the ratio is hardware-free).
func gateReports(base, cand Report, maxNsRegressPct, minReinduceSpeedup float64, checks gateChecks) []string {
	var violations []string
	if checks.reinduce {
		var induce, reinduce *Run
		for i := range cand.Runs {
			switch cand.Runs[i].Name {
			case "induce":
				induce = &cand.Runs[i]
			case "reinduce":
				reinduce = &cand.Runs[i]
			}
		}
		// Candidates measured before the maintenance surfaces existed have
		// nothing to hold the ratio on; the check engages once both appear.
		if induce != nil && reinduce != nil && reinduce.NsPerRow > 0 {
			speedup := induce.NsPerRow / reinduce.NsPerRow
			if speedup < minReinduceSpeedup {
				violations = append(violations,
					fmt.Sprintf("reinduce: incremental re-induction only %.2fx faster than full induction (%.0f vs %.0f ns/row, floor %.1fx)",
						speedup, reinduce.NsPerRow, induce.NsPerRow, minReinduceSpeedup))
			}
		}
	}
	baseByName := make(map[string]Run, len(base.Runs))
	for _, r := range base.Runs {
		baseByName[r.Name] = r
	}
	for _, c := range cand.Runs {
		b, ok := baseByName[c.Name]
		if !ok {
			continue // new surface: no baseline yet
		}
		if checks.alloc && c.SteadyState && c.AllocsPerRow > 0 {
			violations = append(violations,
				fmt.Sprintf("%s: steady-state path allocates (%.6f allocs/row, want 0)", c.Name, c.AllocsPerRow))
		}
		// The maintenance surfaces run one multi-second iteration each, far
		// too few samples for a percent-level wall-clock tolerance; their
		// performance contract is the within-candidate reinduce ratio above.
		maintenance := c.Name == "induce" || c.Name == "reinduce"
		if checks.ns && b.NsPerRow > 0 && !maintenance {
			regress := (c.NsPerRow - b.NsPerRow) / b.NsPerRow * 100
			if regress > maxNsRegressPct {
				violations = append(violations,
					fmt.Sprintf("%s: ns/row regressed %.1f%% (%.1f -> %.1f, tolerance %.0f%%)",
						c.Name, regress, b.NsPerRow, c.NsPerRow, maxNsRegressPct))
			}
		}
		if checks.alloc && c.AllocsPerRow > b.AllocsPerRow*1.02+1e-9 {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/row increased (%.6f -> %.6f)", c.Name, b.AllocsPerRow, c.AllocsPerRow))
		}
		if checks.suspicious && b.Suspicious != 0 && c.Suspicious != b.Suspicious && c.Rows == b.Rows {
			violations = append(violations,
				fmt.Sprintf("%s: suspicious count changed (%d -> %d) — scoring output drifted", c.Name, b.Suspicious, c.Suspicious))
		}
	}
	return violations
}

// fixture builds the deterministic polluted QUIS table and its model —
// the same construction the audit package benchmarks use. perturbed is
// the same clean sample polluted with a different seed: it shares most
// rows with dirty but drifts in a few percent of cells, the shape of
// load the monitor's re-induction path sees.
func fixture(rows int, seed int64) (dirty, perturbed *dataset.Table, model *audit.Model) {
	sample, err := quis.Generate(quis.Params{NumRecords: rows, Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcore: %v\n", err)
		os.Exit(1)
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	dirty, _ = pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))
	perturbed, _ = pollute.Run(sample.Data, plan, rand.New(rand.NewSource(43)))
	model, err = audit.Induce(dirty, audit.Options{MinConfidence: 0.8})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcore: %v\n", err)
		os.Exit(1)
	}
	return dirty, perturbed, model
}

// readReport loads and validates a BENCH_core.json document.
func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Runs) == 0 {
		return rep, fmt.Errorf("%s: no runs — not a benchcore report", path)
	}
	return rep, nil
}
