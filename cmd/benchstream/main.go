// Command benchstream measures the memory behaviour the streaming audit
// engine exists for: batch auditing (materialize the table, then score)
// against streaming auditing (score rows as they arrive) over growing row
// counts, reporting wall time, cumulative allocations and — the headline
// number — sampled peak live heap. The batch path's peak grows linearly
// with the rows; the stream's stays flat at O(chunk × workers + K).
//
//	go run ./cmd/benchstream -out BENCH_stream.json
//
// The JSON output is committed as BENCH_stream.json and refreshed by the
// CI bench job.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/benchutil"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
)

// Run is one measured audit pass.
type Run struct {
	Mode          string  `json:"mode"` // "batch" or "stream"
	Rows          int     `json:"rows"`
	Workers       int     `json:"workers"`
	WallMillis    int64   `json:"wallMillis"`
	PeakHeapMB    float64 `json:"peakHeapMB"`    // sampled max live heap above the baseline
	TotalAllocMB  float64 `json:"totalAllocMB"`  // cumulative allocations during the pass
	NumSuspicious int64   `json:"numSuspicious"` // must agree between the two modes
}

// Report is the BENCH_stream.json document.
type Report struct {
	GeneratedBy string `json:"generatedBy"`
	GoVersion   string `json:"goVersion"`
	NumCPU      int    `json:"numCPU"`
	TrainRows   int    `json:"trainRows"`
	ChunkSize   int    `json:"chunkSize"`
	TopK        int    `json:"topK"`
	Runs        []Run  `json:"runs"`
	Conclusion  string `json:"conclusion"`
}

// cycleSource replays the rows of a small resident base table cyclically
// until n rows were emitted — an unbounded-load simulator whose own
// footprint does not grow with n, so the stream path's peak heap isolates
// the engine's retained state.
type cycleSource struct {
	tab *dataset.Table
	n   int
	i   int
}

func (s *cycleSource) Schema() *dataset.Schema { return s.tab.Schema() }

func (s *cycleSource) Next(buf []dataset.Value) (int64, error) {
	if s.i >= s.n {
		return 0, io.EOF
	}
	s.tab.RowInto(s.i%s.tab.NumRows(), buf)
	s.i++
	return int64(s.i - 1), nil
}

const mb = 1 << 20

func main() {
	var (
		out       = flag.String("out", "BENCH_stream.json", "output file (- for stdout)")
		baseRows  = flag.Int("base-rows", 30000, "resident base table size (also the induction sample)")
		chunkSize = flag.Int("chunk", 1024, "stream chunk size")
		topK      = flag.Int("top", 100, "stream top-K")
		workers   = flag.Int("workers", 4, "scoring workers")
	)
	flag.Parse()

	base, model := fixture(*baseRows)
	sizes := []int{20000, 60000, 120000, 240000}

	rep := Report{
		GeneratedBy: "cmd/benchstream",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		TrainRows:   model.TrainRows,
		ChunkSize:   *chunkSize,
		TopK:        *topK,
	}

	for _, rows := range sizes {
		rep.Runs = append(rep.Runs, measure("batch", rows, *workers, func() int64 {
			// The batch deployment: materialize the whole load, then score.
			tab := materialize(base, rows)
			res := model.AuditTableParallel(tab, *workers)
			return int64(res.NumSuspicious())
		}))
		rep.Runs = append(rep.Runs, measure("stream", rows, *workers, func() int64 {
			res, err := model.AuditStream(&cycleSource{tab: base, n: rows}, audit.StreamOptions{
				ChunkSize: *chunkSize, Workers: *workers, TopK: *topK,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.NumSuspicious
		}))
	}

	rep.Conclusion = conclude(rep.Runs)

	if err := benchutil.WriteJSON(rep, *out); err != nil {
		log.Fatal(err) // non-zero exit: CI must not upload a stale/empty artifact
	}
}

// fixture builds the resident polluted base table and its model.
func fixture(rows int) (*dataset.Table, *audit.Model) {
	sample, err := quis.Generate(quis.Params{NumRecords: rows, Seed: 2003})
	if err != nil {
		log.Fatal(err)
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	dirty, _ := pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))
	model, err := audit.Induce(dirty, audit.Options{MinConfidence: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	return dirty, model
}

// materialize builds an n-row table by replaying the base cyclically —
// what a batch caller has to hold in memory before scoring can start.
func materialize(base *dataset.Table, n int) *dataset.Table {
	tab := dataset.NewTable(base.Schema())
	buf := make([]dataset.Value, base.NumCols())
	for i := 0; i < n; i++ {
		tab.AppendRow(base.RowInto(i%base.NumRows(), buf))
	}
	return tab
}

// measure runs fn with a quiesced heap and a peak sampler.
func measure(mode string, rows, workers int, fn func() int64) Run {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	mon := benchutil.StartHeapMonitor()

	start := time.Now()
	suspicious := fn()
	wall := time.Since(start)

	peak := mon.Stop()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	r := Run{
		Mode:          mode,
		Rows:          rows,
		Workers:       workers,
		WallMillis:    wall.Milliseconds(),
		TotalAllocMB:  float64(after.TotalAlloc-before.TotalAlloc) / mb,
		NumSuspicious: suspicious,
	}
	if peak > before.HeapAlloc {
		r.PeakHeapMB = float64(peak-before.HeapAlloc) / mb
	}
	fmt.Fprintf(os.Stderr, "benchstream: %-6s rows=%-7d wall=%-8s peak=%7.1f MB alloc=%8.1f MB suspicious=%d\n",
		mode, rows, wall.Round(time.Millisecond), r.PeakHeapMB, r.TotalAllocMB, suspicious)
	return r
}

// conclude summarizes the scaling behaviour of the two modes. Growth is
// measured from the first run whose peak the sampler actually caught
// (very short runs can complete between samples and report 0).
func conclude(runs []Run) string {
	first := map[string]Run{}
	last := map[string]Run{}
	for _, r := range runs {
		if f, ok := first[r.Mode]; !ok || f.PeakHeapMB <= 0 {
			if r.PeakHeapMB > 0 || !ok {
				first[r.Mode] = r
			}
		}
		last[r.Mode] = r
	}
	growth := func(m string) (float64, float64) {
		f, l := first[m], last[m]
		if f.PeakHeapMB <= 0 {
			return 0, 0
		}
		return l.PeakHeapMB / f.PeakHeapMB, float64(l.Rows) / float64(f.Rows)
	}
	bg, brows := growth("batch")
	sg, srows := growth("stream")
	return fmt.Sprintf(
		"batch peak heap grew %.1fx over a %.0fx row growth; stream peak heap grew %.1fx over a %.0fx row growth (stream retained state is O(chunk × workers + K), independent of row count)",
		bg, brows, sg, srows)
}
