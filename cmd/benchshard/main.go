// Command benchshard measures coordinator/worker scale-out and gates CI
// on the result. In measure mode it boots N worker auditd processes
// (re-executing itself with -worker), scores a deterministic polluted
// QUIS batch through a kNN model — expensive enough per row that scoring,
// not wire transfer, dominates — once single-node and once sharded across
// the workers, and writes BENCH_shard.json:
//
//	go run ./cmd/benchshard -out BENCH_shard.json
//
// The committed BENCH_shard.json at the repo root records the scale
// factor (sharded rows/sec over single-node rows/sec) together with the
// core count of the measuring machine. In gate mode benchshard checks a
// candidate measurement against the near-linear scaling floor:
//
//	go run ./cmd/benchshard -gate -candidate BENCH_shard.json \
//	    -checks shardscale -min-scale 2.2
//
// The shardscale check is within-candidate (no baseline file): with 3
// workers the sharded run must be at least -min-scale times faster. The
// comparison only makes sense when every worker can own a core, so the
// gate enforces the floor when the candidate was measured on at least
// workers+1 cores and downgrades to a warning otherwise (a 1-core
// container cannot scale out; CI runners can and do enforce).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/benchutil"
	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
	"dataaudit/internal/quis"
	"dataaudit/internal/registry"
	"dataaudit/internal/serve"
	"dataaudit/internal/shard"
)

// Run is one measured scoring pass.
type Run struct {
	// Name is "single" (in-process AuditTable) or "sharded".
	Name string `json:"name"`
	// Rows is the batch size; Workers the worker-process count (1 for
	// single) and Shards the split width (0 for single).
	Rows    int `json:"rows"`
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// RowsPerSec is the end-to-end scoring throughput; Millis the wall
	// time of the measured pass.
	RowsPerSec float64 `json:"rowsPerSec"`
	Millis     int64   `json:"millis"`
	// Suspicious is the suspicious-record count — identical across the
	// two passes by the differential contract.
	Suspicious int `json:"suspicious"`
}

// Report is the BENCH_shard.json document.
type Report struct {
	GeneratedBy string `json:"generatedBy"`
	GoVersion   string `json:"goVersion"`
	// Cores is the measuring machine's CPU count. The scaling gate only
	// enforces when Cores >= Workers+1 — scale-out cannot show on a
	// machine with fewer cores than processes.
	Cores     int    `json:"cores"`
	Rows      int    `json:"rows"`
	TrainRows int    `json:"trainRows"`
	Seed      int64  `json:"seed"`
	Strategy  string `json:"strategy"`
	Runs      []Run  `json:"runs"`
	// Scale is sharded rows/sec over single-node rows/sec.
	Scale float64 `json:"scale"`
}

func main() {
	var (
		worker    = flag.Bool("worker", false, "internal: run as a worker auditd on a loopback port and print LISTEN <url>")
		dir       = flag.String("dir", "", "worker mode: registry directory")
		out       = flag.String("out", "BENCH_shard.json", "output file (- for stdout)")
		rows      = flag.Int("rows", 30000, "scored batch size (QUIS generator floor)")
		trainRows = flag.Int("train-rows", 1500, "kNN training sample size (scoring cost per row grows with it)")
		workers   = flag.Int("workers", 3, "worker process count")
		seed      = flag.Int64("seed", 2003, "generator seed (fixture is fully deterministic)")
		strategy  = flag.String("strategy", "range", "shard strategy: range or hash")
		gate      = flag.Bool("gate", false, "gate mode: check -candidate instead of measuring")
		candidate = flag.String("candidate", "", "candidate BENCH_shard.json for -gate mode")
		checks    = flag.String("checks", "shardscale", "comma list of gate checks: shardscale")
		minScale  = flag.Float64("min-scale", 2.2, "scaling floor the sharded run must hold over single-node")
	)
	flag.Parse()

	if *worker {
		runWorker(*dir)
		return
	}
	if *gate {
		os.Exit(runGate(*candidate, *checks, *minScale))
	}

	rep, err := measure(*rows, *trainRows, *workers, *seed, *strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchshard: %v\n", err)
		os.Exit(1)
	}
	if err := benchutil.WriteJSON(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchshard: %v\n", err)
		os.Exit(1)
	}
}

// runWorker is the re-exec target: a plain auditd over an empty registry
// on an ephemeral loopback port. The parent scrapes the LISTEN line.
func runWorker(dir string) {
	logger := log.New(os.Stderr, "benchshard-worker ", log.LstdFlags)
	if dir == "" {
		logger.Fatal("-worker requires -dir")
	}
	reg, err := registry.Open(dir)
	if err != nil {
		logger.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("LISTEN http://%s\n", ln.Addr())
	os.Stdout.Close() // parent reads to EOF; nothing else is coming
	srv := serve.New(reg, serve.WithMetrics(false), serve.WithDashboard(false), serve.WithLogger(logger))
	logger.Fatal(http.Serve(ln, srv.Handler()))
}

// startWorkers boots n worker processes and returns their base URLs plus
// a stop function that kills them.
func startWorkers(n int, baseDir string) ([]string, func(), error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var (
		urls  []string
		procs []*exec.Cmd
	)
	stop := func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
			p.Wait()
		}
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, "-worker", "-dir", filepath.Join(baseDir, fmt.Sprintf("w%d", i)))
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			stop()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, err
		}
		procs = append(procs, cmd)
		sc := bufio.NewScanner(stdout)
		url := ""
		for sc.Scan() {
			if after, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				url = after
				break
			}
		}
		if url == "" {
			stop()
			return nil, nil, fmt.Errorf("worker %d never announced its address", i)
		}
		urls = append(urls, url)
	}
	return urls, stop, nil
}

// measure builds the fixture, runs the single-node and sharded passes and
// assembles the report.
func measure(rows, trainRows, workers int, seed int64, strategy string) (Report, error) {
	strat, err := shard.ParseStrategy(strategy)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(os.Stderr, "benchshard: generating %d-row fixture (seed %d), inducing kNN model on %d rows\n", rows, seed, trainRows)
	sample, err := quis.Generate(quis.Params{NumRecords: rows, Seed: seed})
	if err != nil {
		return Report{}, err
	}
	plan := pollute.Plan{Cell: []pollute.Configured{
		{Prob: 0.02, P: &pollute.WrongValuePolluter{}},
		{Prob: 0.01, P: &pollute.NullValuePolluter{}},
	}}
	dirty, _ := pollute.Run(sample.Data, plan, rand.New(rand.NewSource(42)))

	// Train on a clean prefix slice: kNN per-row scoring cost is
	// proportional to the training size, which keeps scoring (not gob/HTTP
	// transfer) the dominant term of a shard dispatch, and a clean sample
	// gives the pollution below something to deviate from.
	train := dataset.NewTable(dirty.Schema())
	row := make([]dataset.Value, dirty.NumCols())
	for r := 0; r < trainRows && r < sample.Data.NumRows(); r++ {
		train.AppendRow(sample.Data.RowInto(r, row))
	}
	// The suspicious counts below are a determinism cross-check between
	// the two passes, not an audit-quality statement — a small kNN sample
	// yields low error confidences across the board.
	model, err := audit.Induce(train, audit.Options{
		MinConfidence: 0.8,
		Inducer:       audit.InducerKNN,
	})
	if err != nil {
		return Report{}, err
	}

	rep := Report{
		GeneratedBy: "cmd/benchshard",
		GoVersion:   runtime.Version(),
		Cores:       runtime.NumCPU(),
		Rows:        dirty.NumRows(),
		TrainRows:   model.TrainRows,
		Seed:        seed,
		Strategy:    string(strat),
	}

	// Single-node pass: the sequential scorer, no pool — the per-core
	// baseline the scale factor is defined against.
	start := time.Now()
	res := model.AuditTable(dirty)
	single := runFrom("single", dirty.NumRows(), 1, 0, time.Since(start), res.NumSuspicious())
	rep.Runs = append(rep.Runs, single)

	// Sharded pass across worker processes.
	tmp, err := os.MkdirTemp("", "benchshard-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(tmp)
	urls, stopWorkers, err := startWorkers(workers, tmp)
	if err != nil {
		return Report{}, err
	}
	defer stopWorkers()

	reg, err := registry.Open(filepath.Join(tmp, "coordinator"))
	if err != nil {
		return Report{}, err
	}
	meta, err := reg.Publish("bench", model)
	if err != nil {
		return Report{}, err
	}
	coord, err := shard.New(shard.Options{Workers: urls, Strategy: strat})
	if err != nil {
		return Report{}, err
	}
	ctx := context.Background()

	// Warm-up: replicate the model and open connections on a small prefix
	// so the measured pass is steady-state scoring.
	warm := dataset.NewTable(dirty.Schema())
	for r := 0; r < 64; r++ {
		warm.AppendRow(dirty.RowInto(r, row))
	}
	if _, err := coord.AuditTable(ctx, model, meta, warm); err != nil {
		return Report{}, fmt.Errorf("warm-up: %w", err)
	}

	start = time.Now()
	shardedRes, err := coord.AuditTable(ctx, model, meta, dirty)
	if err != nil {
		return Report{}, err
	}
	sharded := runFrom("sharded", dirty.NumRows(), workers, coord.Shards(), time.Since(start), shardedRes.NumSuspicious())
	rep.Runs = append(rep.Runs, sharded)

	if sharded.Suspicious != single.Suspicious {
		return Report{}, fmt.Errorf("differential violation: sharded found %d suspicious, single-node %d",
			sharded.Suspicious, single.Suspicious)
	}
	rep.Scale = sharded.RowsPerSec / single.RowsPerSec
	fmt.Fprintf(os.Stderr, "benchshard: scale %.2fx on %d cores (%d workers)\n", rep.Scale, rep.Cores, workers)
	return rep, nil
}

func runFrom(name string, rows, workers, shards int, elapsed time.Duration, suspicious int) Run {
	r := Run{
		Name:       name,
		Rows:       rows,
		Workers:    workers,
		Shards:     shards,
		RowsPerSec: float64(rows) / elapsed.Seconds(),
		Millis:     elapsed.Milliseconds(),
		Suspicious: suspicious,
	}
	fmt.Fprintf(os.Stderr, "benchshard: %-8s rows=%-7d workers=%d  %12.0f rows/s  %6dms  suspicious=%d\n",
		name, rows, workers, r.RowsPerSec, r.Millis, r.Suspicious)
	return r
}

// runGate checks a candidate report and returns the process exit code.
func runGate(candidate, checks string, minScale float64) int {
	if candidate == "" {
		fmt.Fprintln(os.Stderr, "benchshard: -gate requires -candidate")
		return 2
	}
	wantScale := false
	for _, c := range strings.Split(checks, ",") {
		switch strings.TrimSpace(c) {
		case "shardscale", "all":
			wantScale = true
		case "":
		default:
			fmt.Fprintf(os.Stderr, "benchshard: unknown check %q (want shardscale)\n", c)
			return 2
		}
	}
	data, err := os.ReadFile(candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchshard: %v\n", err)
		return 2
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchshard: %s: %v\n", candidate, err)
		return 2
	}
	var sharded *Run
	for i := range rep.Runs {
		if rep.Runs[i].Name == "sharded" {
			sharded = &rep.Runs[i]
		}
	}
	if sharded == nil || rep.Scale <= 0 {
		fmt.Fprintf(os.Stderr, "benchshard: %s holds no sharded run — not a benchshard report\n", candidate)
		return 2
	}
	if !wantScale {
		fmt.Fprintln(os.Stderr, "benchshard: no checks selected")
		return 2
	}
	// A machine with fewer cores than processes cannot exhibit scale-out:
	// the workers time-slice one another. Warn instead of failing so the
	// measurement stays honest on small containers while CI (which has the
	// cores) enforces.
	if rep.Cores < sharded.Workers+1 {
		fmt.Fprintf(os.Stderr,
			"benchshard: WARNING: shardscale skipped — measured on %d cores with %d workers (+1 coordinator); the floor needs at least %d cores to be meaningful\n",
			rep.Cores, sharded.Workers, sharded.Workers+1)
		return 0
	}
	if rep.Scale < minScale {
		fmt.Fprintf(os.Stderr,
			"benchshard: GATE FAIL: shardscale %.2fx below the %.1fx floor (%d workers on %d cores) — scale-out regressed\n",
			rep.Scale, minScale, sharded.Workers, rep.Cores)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchshard: gate passed (scale %.2fx >= %.1fx with %d workers on %d cores)\n",
		rep.Scale, minScale, sharded.Workers, rep.Cores)
	return 0
}
