// Command audit is the data auditing tool of §5: it induces a structure
// model (one classifier per attribute, audit-adjusted C4.5 by default),
// detects deviations, ranks them by error confidence and proposes
// corrections. Structure induction and checking can run separately (§2.2):
//
//	# one-shot: induce on the table and audit it
//	audit -schema engine.schema -in dirty.csv -top 20
//
//	# asynchronous: induce offline, check new loads online
//	audit -schema engine.schema -in history.csv -induce -model model.bin
//	audit -schema engine.schema -in tonight.csv -model model.bin -top 50
//
//	# write corrections
//	audit -schema engine.schema -in dirty.csv -corrected fixed.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "schema definition file (required)")
		in         = flag.String("in", "", "input CSV (required)")
		induceOnly = flag.Bool("induce", false, "only induce the structure model and save it (-model required)")
		modelPath  = flag.String("model", "", "model file to save (-induce) or load (checking)")
		minConf    = flag.Float64("minconf", 0.8, "minimal error confidence for suspicious records")
		bins       = flag.Int("bins", 5, "equal-frequency bins for numeric class attributes")
		inducer    = flag.String("inducer", string(audit.InducerC45Audit),
			"induction algorithm: c45-audit, c45, id3, nbayes, knn, 1r, prism")
		top       = flag.Int("top", 20, "number of top-ranked suspicious records to print")
		corrected = flag.String("corrected", "", "optional output CSV with corrections applied (§5.3)")
		filter    = flag.String("filter", "", "rule filter: paper, reachable, none "+
			"(default: paper for one-shot audits, reachable for -induce, since a model trained on "+
			"clean history needs its pure rules to flag deviations in future loads)")
	)
	flag.Parse()
	if *schemaPath == "" || *in == "" {
		fail("need -schema and -in")
	}
	schema, err := dataset.ParseSchemaFile(*schemaPath)
	if err != nil {
		fail("%v", err)
	}
	table, err := dataset.ReadCSVFile(*in, schema)
	if err != nil {
		fail("%v", err)
	}

	var model *audit.Model
	if *modelPath != "" && !*induceOnly {
		if model, err = audit.Load(*modelPath); err != nil && !os.IsNotExist(err) {
			fail("loading model: %v", err)
		}
	}
	if model == nil {
		opts := audit.Options{
			MinConfidence: *minConf,
			Bins:          *bins,
			Inducer:       audit.InducerKind(*inducer),
		}
		switch *filter {
		case "":
			if *induceOnly {
				opts.Filter = audittree.FilterReachableOnly
			}
		case "paper":
			opts.Filter = audittree.FilterPaper
		case "reachable":
			opts.Filter = audittree.FilterReachableOnly
		case "none":
			opts.Filter = audittree.FilterNone
		default:
			fail("unknown -filter %q", *filter)
		}
		if model, err = audit.Induce(table, opts); err != nil {
			fail("induction: %v", err)
		}
		fmt.Fprintf(os.Stderr, "induced structure model for %d attributes from %d records in %v\n",
			len(model.Attrs), model.TrainRows, model.InduceTime)
		if *induceOnly {
			if *modelPath == "" {
				fail("-induce needs -model")
			}
			if err := audit.Save(*modelPath, model); err != nil {
				fail("saving model: %v", err)
			}
			fmt.Fprintf(os.Stderr, "saved model to %s\n", *modelPath)
			return
		}
	}

	res := model.AuditTable(table)
	sus := res.Suspicious()
	fmt.Printf("checked %d records in %v: %d suspicious (error confidence >= %.2f)\n",
		table.NumRows(), res.CheckTime, len(sus), model.Opts.MinConfidence)
	for i, rep := range sus {
		if i >= *top {
			fmt.Printf("... and %d more\n", len(sus)-*top)
			break
		}
		fmt.Printf("%4d. record id=%d  confidence %.2f%%\n", i+1, rep.ID, rep.ErrorConf*100)
		fmt.Printf("      %s\n", model.DescribeFinding(rep.Best))
		for fi := range rep.Findings {
			f := &rep.Findings[fi]
			if f == rep.Best || f.ErrorConf < model.Opts.MinConfidence/2 {
				continue
			}
			fmt.Printf("      also: %s\n", model.DescribeFinding(f))
		}
		// §5.3 root-cause hypothesis: the single substitution that best
		// explains the record.
		if causes := model.ExplainRow(table.Row(rep.Row)); len(causes) > 0 && causes[0].Clears {
			fmt.Printf("      likely fix: %s\n", model.DescribeRootCause(&causes[0]))
		}
	}

	if *corrected != "" {
		fixed := model.ApplyCorrections(table, res)
		if err := dataset.WriteCSVFile(*corrected, fixed); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote corrected table to %s\n", *corrected)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "audit: "+format+"\n", args...)
	os.Exit(1)
}
