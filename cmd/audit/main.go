// Command audit is the data auditing tool of §5: it induces a structure
// model (one classifier per attribute, audit-adjusted C4.5 by default),
// detects deviations, ranks them by error confidence and proposes
// corrections. Structure induction and checking can run separately (§2.2):
//
//	# one-shot: induce on the table and audit it
//	audit -schema engine.schema -in dirty.csv -top 20
//
//	# asynchronous: induce offline, check new loads online
//	audit -schema engine.schema -in history.csv -induce -model model.bin
//	audit -schema engine.schema -in tonight.csv -model model.bin -top 50
//
//	# bounded memory: stream an arbitrarily large load through a saved
//	# model without ever materializing the table
//	audit -schema engine.schema -in warehouse.csv -model model.bin -stream -top 50
//
//	# write corrections
//	audit -schema engine.schema -in dirty.csv -corrected fixed.csv
//
//	# machine-readable run summary: append the audit's metrics in
//	# Prometheus text format (same series auditd exports at /metrics)
//	audit -schema engine.schema -in dirty.csv -stats
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/obs"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "schema definition file (required)")
		in         = flag.String("in", "", "input CSV (required)")
		induceOnly = flag.Bool("induce", false, "only induce the structure model and save it (-model required)")
		modelPath  = flag.String("model", "", "model file to save (-induce) or load (checking)")
		minConf    = flag.Float64("minconf", 0.8, "minimal error confidence for suspicious records")
		bins       = flag.Int("bins", 5, "equal-frequency bins for numeric class attributes")
		inducer    = flag.String("inducer", string(audit.InducerC45Audit),
			"induction algorithm: c45-audit, c45, id3, nbayes, knn, 1r, prism")
		top       = flag.Int("top", 20, "number of top-ranked suspicious records to print")
		corrected = flag.String("corrected", "", "optional output CSV with corrections applied (§5.3)")
		filter    = flag.String("filter", "", "rule filter: paper, reachable, none "+
			"(default: paper for one-shot audits, reachable for -induce, since a model trained on "+
			"clean history needs its pure rules to flag deviations in future loads)")
		stream  = flag.Bool("stream", false, "stream the input through a saved -model with bounded memory (no table materialization)")
		chunk   = flag.Int("chunk", 1024, "rows per scoring chunk in -stream mode")
		workers = flag.Int("workers", 0, "scoring workers in -stream mode (0 = NumCPU)")
		stats   = flag.Bool("stats", false, "append a one-shot metric summary of the run in Prometheus text format (the same series auditd exports at /metrics)")
	)
	flag.Parse()
	if *schemaPath == "" || *in == "" {
		fail("need -schema and -in")
	}
	schema, err := dataset.ParseSchemaFile(*schemaPath)
	if err != nil {
		fail("%v", err)
	}

	failOnHeaderMismatch := func(err error) {
		// A reordered or renamed header used to be the silent
		// column-misalignment trap; surface the offending columns and the
		// expected order instead of a bare parse error.
		if errors.Is(err, dataset.ErrHeader) {
			fail("%v\n       expected column order: %s", err, strings.Join(schema.Names(), ","))
		}
	}

	if *stream {
		// The streaming path never loads the table: rows flow straight
		// from the CSV decoder into the chunked scorer. That also means
		// there is nothing to induce from — a saved model is required.
		if *modelPath == "" || *induceOnly {
			fail("-stream needs a saved -model (structure induction requires the full table)")
		}
		if *corrected != "" {
			fail("-corrected needs the materialized table; drop -stream")
		}
		model, err := audit.Load(*modelPath)
		if err != nil {
			fail("loading model: %v", err)
		}
		runStream(model, schema, *in, *top, *chunk, *workers, *stats, failOnHeaderMismatch)
		return
	}

	table, err := dataset.ReadCSVFile(*in, schema)
	if err != nil {
		failOnHeaderMismatch(err)
		fail("%v", err)
	}

	var model *audit.Model
	if *modelPath != "" && !*induceOnly {
		// An explicitly named model that cannot be loaded is an error —
		// silently falling back to inducing from the (possibly dirty)
		// input would audit the data against itself and mask exactly the
		// deviations the saved model was meant to flag.
		if model, err = audit.Load(*modelPath); err != nil {
			fail("loading model: %v", err)
		}
	}
	if model == nil {
		opts := audit.Options{
			MinConfidence: *minConf,
			Bins:          *bins,
			Inducer:       audit.InducerKind(*inducer),
		}
		switch *filter {
		case "":
			if *induceOnly {
				opts.Filter = audittree.FilterReachableOnly
			}
		case "paper":
			opts.Filter = audittree.FilterPaper
		case "reachable":
			opts.Filter = audittree.FilterReachableOnly
		case "none":
			opts.Filter = audittree.FilterNone
		default:
			fail("unknown -filter %q", *filter)
		}
		if model, err = audit.Induce(table, opts); err != nil {
			fail("induction: %v", err)
		}
		fmt.Fprintf(os.Stderr, "induced structure model for %d attributes from %d records in %v\n",
			len(model.Attrs), model.TrainRows, model.InduceTime)
		if *induceOnly {
			if *modelPath == "" {
				fail("-induce needs -model")
			}
			if err := audit.Save(*modelPath, model); err != nil {
				fail("saving model: %v", err)
			}
			fmt.Fprintf(os.Stderr, "saved model to %s\n", *modelPath)
			return
		}
	}

	res := model.AuditTable(table)
	sus := res.Suspicious()
	fmt.Printf("checked %d records in %v: %d suspicious (error confidence >= %.2f)\n",
		table.NumRows(), res.CheckTime, len(sus), model.Opts.MinConfidence)
	for i, rep := range sus {
		if i >= *top {
			fmt.Printf("... and %d more\n", len(sus)-*top)
			break
		}
		fmt.Printf("%4d. record id=%d  confidence %.2f%%\n", i+1, rep.ID, rep.ErrorConf*100)
		fmt.Printf("      %s\n", model.DescribeFinding(rep.Best))
		for fi := range rep.Findings {
			f := &rep.Findings[fi]
			if f == rep.Best || f.ErrorConf < model.Opts.MinConfidence/2 {
				continue
			}
			fmt.Printf("      also: %s\n", model.DescribeFinding(f))
		}
		// §5.3 root-cause hypothesis: the single substitution that best
		// explains the record.
		if causes := model.ExplainRow(table.Row(rep.Row)); len(causes) > 0 && causes[0].Clears {
			fmt.Printf("      likely fix: %s\n", model.DescribeRootCause(&causes[0]))
		}
	}

	if *corrected != "" {
		fixed := model.ApplyCorrections(table, res)
		if err := dataset.WriteCSVFile(*corrected, fixed); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote corrected table to %s\n", *corrected)
	}

	if *stats {
		susCount, tallies := model.TallyResult(res)
		printStats(model, int64(table.NumRows()), susCount, res.CheckTime, tallies)
	}
}

// printStats renders one audit run as Prometheus text exposition,
// through the same metric structs auditd feeds from the monitor — the
// series names and label shapes match a scraped /metrics exactly, so the
// same parsing works on a CLI run and a daemon scrape.
func printStats(model *audit.Model, rows, suspicious int64, checkTime time.Duration, tallies []audit.AttrTally) {
	reg := obs.NewRegistry()
	mets := obs.NewAuditMetrics(reg)
	const label = "cli" // one-shot runs have no registry model name
	mets.RowsScored.With(label).Add(uint64(rows))
	mets.RowsSuspicious.With(label).Add(uint64(suspicious))
	if rows > 0 {
		mets.WindowSuspiciousRate.With(label).Set(float64(suspicious) / float64(rows))
	}
	if checkTime > 0 {
		// Throughput only exists for a finished one-shot run, so this
		// gauge is CLI-only; the daemon's equivalent is a rate() over
		// dataaudit_rows_scored_total.
		reg.NewGauge("dataaudit_audit_rows_per_second",
			"Scoring throughput of this one-shot audit run.").
			Set(float64(rows) / checkTime.Seconds())
	}
	for i := range tallies {
		t := &tallies[i]
		name := model.Schema.Attr(t.Attr).Name
		mets.AttrDeviations.With(label, name).Add(uint64(t.Deviations))
		mets.AttrSuspicious.With(label, name).Add(uint64(t.Suspicious))
	}
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		fail("%v", err)
	}
}

// runStream audits the CSV through the bounded-memory pipeline and prints
// the ranked top-K plus per-attribute deviation tallies.
func runStream(model *audit.Model, schema *dataset.Schema, in string, top, chunk, workers int, stats bool, failOnHeaderMismatch func(error)) {
	src, closer, err := dataset.OpenCSVFileSource(in, schema)
	if err != nil {
		failOnHeaderMismatch(err)
		fail("%v", err)
	}
	defer closer.Close()

	res, err := model.AuditStream(src, audit.StreamOptions{
		ChunkSize: chunk,
		Workers:   workers,
		TopK:      top,
	})
	if err != nil {
		fail("streaming audit: %v", err)
	}

	fmt.Printf("streamed %d records in %v: %d suspicious (error confidence >= %.2f)\n",
		res.RowsChecked, res.CheckTime, res.NumSuspicious, model.Opts.MinConfidence)
	for i := range res.Top {
		rep := &res.Top[i]
		fmt.Printf("%4d. record id=%d  confidence %.2f%%\n", i+1, rep.ID, rep.ErrorConf*100)
		fmt.Printf("      %s\n", model.DescribeFinding(rep.Best))
	}
	if res.TopTruncated {
		fmt.Printf("... and %d more (raise -top to rank them)\n", res.NumSuspicious-int64(len(res.Top)))
	}
	fmt.Println("per-attribute deviations:")
	for _, tally := range res.Attrs {
		if tally.Deviations == 0 {
			continue
		}
		fmt.Printf("  %-14s %8d deviations, %6d suspicious, max confidence %.2f%%\n",
			model.Schema.Attr(tally.Attr).Name, tally.Deviations, tally.Suspicious, tally.MaxErrorConf*100)
	}
	if stats {
		printStats(model, res.RowsChecked, res.NumSuspicious, res.CheckTime, res.Attrs)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "audit: "+format+"\n", args...)
	os.Exit(1)
}
