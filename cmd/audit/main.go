// Command audit is the data auditing tool of §5: it induces a structure
// model (one classifier per attribute, audit-adjusted C4.5 by default),
// detects deviations, ranks them by error confidence and proposes
// corrections. Structure induction and checking can run separately (§2.2):
//
//	# one-shot: induce on the table and audit it
//	audit -schema engine.schema -in dirty.csv -top 20
//
//	# asynchronous: induce offline, check new loads online
//	audit -schema engine.schema -in history.csv -induce -model model.bin
//	audit -schema engine.schema -in tonight.csv -model model.bin -top 50
//
//	# bounded memory: stream an arbitrarily large load through a saved
//	# model without ever materializing the table
//	audit -schema engine.schema -in warehouse.csv -model model.bin -stream -top 50
//
//	# write corrections
//	audit -schema engine.schema -in dirty.csv -corrected fixed.csv
//
//	# machine-readable run summary: append the audit's metrics in
//	# Prometheus text format (same series auditd exports at /metrics)
//	audit -schema engine.schema -in dirty.csv -stats
//
//	# other ingestion paths: JSONL files (by extension or -format) and
//	# database/sql result sets (columns named like the schema attributes)
//	audit -schema engine.schema -in tonight.jsonl -model model.bin
//	audit -schema engine.schema -model model.bin \
//	      -sql-driver postgres -sql-dsn "$DSN" -sql-query 'SELECT * FROM engines'
//
//	# scan the batch for exact and near-duplicate records alongside the
//	# deviation audit
//	audit -schema engine.schema -in dirty.csv -dedup
package main

import (
	"database/sql"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/audittree"
	"dataaudit/internal/dataset"
	"dataaudit/internal/dedup"
	"dataaudit/internal/obs"

	// The in-memory test driver, so the SQL ingestion path is runnable
	// (and testable) without any external database: -sql-driver sqlmem.
	_ "dataaudit/internal/sqlmem"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "schema definition file (required)")
		in         = flag.String("in", "", "input CSV or JSONL file (required unless the -sql-* flags replace it)")
		induceOnly = flag.Bool("induce", false, "only induce the structure model and save it (-model required)")
		modelPath  = flag.String("model", "", "model file to save (-induce) or load (checking)")
		minConf    = flag.Float64("minconf", 0.8, "minimal error confidence for suspicious records")
		bins       = flag.Int("bins", 5, "equal-frequency bins for numeric class attributes")
		inducer    = flag.String("inducer", string(audit.InducerC45Audit),
			"induction algorithm: c45-audit, c45, id3, nbayes, knn, 1r, prism")
		top       = flag.Int("top", 20, "number of top-ranked suspicious records to print")
		corrected = flag.String("corrected", "", "optional output CSV with corrections applied (§5.3)")
		filter    = flag.String("filter", "", "rule filter: paper, reachable, none "+
			"(default: paper for one-shot audits, reachable for -induce, since a model trained on "+
			"clean history needs its pure rules to flag deviations in future loads)")
		stream  = flag.Bool("stream", false, "stream the input through a saved -model with bounded memory (no table materialization)")
		chunk   = flag.Int("chunk", 1024, "rows per scoring chunk in -stream mode")
		workers = flag.Int("workers", 0, "scoring workers in -stream mode (0 = NumCPU)")
		stats   = flag.Bool("stats", false, "append a one-shot metric summary of the run in Prometheus text format (the same series auditd exports at /metrics)")

		format    = flag.String("format", "auto", "input format of -in: auto (by extension), csv or jsonl")
		dedupScan = flag.Bool("dedup", false, "also scan the batch for exact and near-duplicate records (needs the materialized table; incompatible with -stream)")
		sqlDriver = flag.String("sql-driver", "", "database/sql driver name; audits a query result set instead of a file (with -sql-dsn and -sql-query, replacing -in)")
		sqlDSN    = flag.String("sql-dsn", "", "data source name passed to the -sql-driver")
		sqlQuery  = flag.String("sql-query", "", "query whose result set is audited; result columns must match the schema attribute names")
	)
	flag.Parse()
	useSQL := *sqlDriver != "" || *sqlQuery != ""
	if *schemaPath == "" {
		fail("need -schema")
	}
	if useSQL {
		if *sqlDriver == "" || *sqlQuery == "" {
			fail("SQL ingestion needs both -sql-driver and -sql-query")
		}
		if *in != "" {
			fail("set either -in or the -sql-* flags, not both")
		}
	} else if *in == "" {
		fail("need -in (or -sql-driver/-sql-query)")
	}
	schema, err := dataset.ParseSchemaFile(*schemaPath)
	if err != nil {
		fail("%v", err)
	}

	failOnHeaderMismatch := func(err error) {
		// A reordered or renamed header used to be the silent
		// column-misalignment trap; surface the offending columns and the
		// expected order instead of a bare parse error.
		if errors.Is(err, dataset.ErrHeader) {
			fail("%v\n       expected column order: %s", err, strings.Join(schema.Names(), ","))
		}
	}

	openSource := func() (dataset.RowSource, io.Closer) {
		src, closer, err := openInput(schema, *in, *format, *sqlDriver, *sqlDSN, *sqlQuery)
		if err != nil {
			failOnHeaderMismatch(err)
			fail("%v", err)
		}
		return src, closer
	}

	if *stream {
		// The streaming path never loads the table: rows flow straight
		// from the decoder into the chunked scorer. That also means
		// there is nothing to induce from — a saved model is required.
		if *modelPath == "" || *induceOnly {
			fail("-stream needs a saved -model (structure induction requires the full table)")
		}
		if *corrected != "" {
			fail("-corrected needs the materialized table; drop -stream")
		}
		if *dedupScan {
			fail("-dedup needs the materialized table; drop -stream")
		}
		model, err := audit.Load(*modelPath)
		if err != nil {
			fail("loading model: %v", err)
		}
		src, closer := openSource()
		defer closer.Close()
		runStream(model, src, *top, *chunk, *workers, *stats)
		return
	}

	src, closer := openSource()
	table, err := dataset.ReadAll(src)
	closer.Close()
	if err != nil {
		failOnHeaderMismatch(err)
		fail("%v", err)
	}

	var model *audit.Model
	if *modelPath != "" && !*induceOnly {
		// An explicitly named model that cannot be loaded is an error —
		// silently falling back to inducing from the (possibly dirty)
		// input would audit the data against itself and mask exactly the
		// deviations the saved model was meant to flag.
		if model, err = audit.Load(*modelPath); err != nil {
			fail("loading model: %v", err)
		}
	}
	if model == nil {
		opts := audit.Options{
			MinConfidence: *minConf,
			Bins:          *bins,
			Inducer:       audit.InducerKind(*inducer),
		}
		switch *filter {
		case "":
			if *induceOnly {
				opts.Filter = audittree.FilterReachableOnly
			}
		case "paper":
			opts.Filter = audittree.FilterPaper
		case "reachable":
			opts.Filter = audittree.FilterReachableOnly
		case "none":
			opts.Filter = audittree.FilterNone
		default:
			fail("unknown -filter %q", *filter)
		}
		if model, err = audit.Induce(table, opts); err != nil {
			fail("induction: %v", err)
		}
		fmt.Fprintf(os.Stderr, "induced structure model for %d attributes from %d records in %v\n",
			len(model.Attrs), model.TrainRows, model.InduceTime)
		if *induceOnly {
			if *modelPath == "" {
				fail("-induce needs -model")
			}
			if err := audit.Save(*modelPath, model); err != nil {
				fail("saving model: %v", err)
			}
			fmt.Fprintf(os.Stderr, "saved model to %s\n", *modelPath)
			return
		}
	}

	res := model.AuditTable(table)
	sus := res.Suspicious()
	fmt.Printf("checked %d records in %v: %d suspicious (error confidence >= %.2f)\n",
		table.NumRows(), res.CheckTime, len(sus), model.Opts.MinConfidence)
	for i, rep := range sus {
		if i >= *top {
			fmt.Printf("... and %d more\n", len(sus)-*top)
			break
		}
		fmt.Printf("%4d. record id=%d  confidence %.2f%%\n", i+1, rep.ID, rep.ErrorConf*100)
		fmt.Printf("      %s\n", model.DescribeFinding(rep.Best))
		for fi := range rep.Findings {
			f := &rep.Findings[fi]
			if f == rep.Best || f.ErrorConf < model.Opts.MinConfidence/2 {
				continue
			}
			fmt.Printf("      also: %s\n", model.DescribeFinding(f))
		}
		// §5.3 root-cause hypothesis: the single substitution that best
		// explains the record.
		if causes := model.ExplainRow(table.Row(rep.Row)); len(causes) > 0 && causes[0].Clears {
			fmt.Printf("      likely fix: %s\n", model.DescribeRootCause(&causes[0]))
		}
	}

	if *dedupScan {
		printDedup(schema, table)
	}

	if *corrected != "" {
		fixed := model.ApplyCorrections(table, res)
		if err := dataset.WriteCSVFile(*corrected, fixed); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote corrected table to %s\n", *corrected)
	}

	if *stats {
		susCount, tallies := model.TallyResult(res)
		printStats(model, int64(table.NumRows()), susCount, res.CheckTime, tallies)
	}
}

// printStats renders one audit run as Prometheus text exposition,
// through the same metric structs auditd feeds from the monitor — the
// series names and label shapes match a scraped /metrics exactly, so the
// same parsing works on a CLI run and a daemon scrape.
func printStats(model *audit.Model, rows, suspicious int64, checkTime time.Duration, tallies []audit.AttrTally) {
	reg := obs.NewRegistry()
	mets := obs.NewAuditMetrics(reg)
	const label = "cli" // one-shot runs have no registry model name
	mets.RowsScored.With(label).Add(uint64(rows))
	mets.RowsSuspicious.With(label).Add(uint64(suspicious))
	if rows > 0 {
		mets.WindowSuspiciousRate.With(label).Set(float64(suspicious) / float64(rows))
	}
	if checkTime > 0 {
		// Throughput only exists for a finished one-shot run, so this
		// gauge is CLI-only; the daemon's equivalent is a rate() over
		// dataaudit_rows_scored_total.
		reg.NewGauge("dataaudit_audit_rows_per_second",
			"Scoring throughput of this one-shot audit run.").
			Set(float64(rows) / checkTime.Seconds())
	}
	for i := range tallies {
		t := &tallies[i]
		name := model.Schema.Attr(t.Attr).Name
		mets.AttrDeviations.With(label, name).Add(uint64(t.Deviations))
		mets.AttrSuspicious.With(label, name).Add(uint64(t.Suspicious))
	}
	if err := reg.WritePrometheus(os.Stdout); err != nil {
		fail("%v", err)
	}
}

// openInput opens the audited records as a row source: a database/sql
// query result when the -sql-* flags are set, otherwise the -in file in
// the requested (or extension-derived) format.
func openInput(schema *dataset.Schema, in, format, sqlDriver, sqlDSN, sqlQuery string) (dataset.RowSource, io.Closer, error) {
	if sqlDriver != "" {
		db, err := sql.Open(sqlDriver, sqlDSN)
		if err != nil {
			return nil, nil, fmt.Errorf("sql: %w", err)
		}
		src, closer, err := dataset.OpenSQLSource(db, sqlQuery, schema)
		if err != nil {
			db.Close()
			return nil, nil, fmt.Errorf("sql: %w", err)
		}
		return src, multiCloser{closer, db}, nil
	}
	switch format {
	case "auto":
		switch strings.ToLower(filepath.Ext(in)) {
		case ".jsonl", ".ndjson":
			format = "jsonl"
		default:
			format = "csv"
		}
	case "csv", "jsonl":
	default:
		return nil, nil, fmt.Errorf("unknown -format %q (want auto, csv or jsonl)", format)
	}
	if format == "jsonl" {
		return dataset.OpenJSONLFileSource(in, schema)
	}
	return dataset.OpenCSVFileSource(in, schema)
}

// multiCloser closes its members in order (SQL sources own a rows cursor
// and the DB handle behind it).
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// printDedup runs the duplicate scan over the audited table and prints
// its summary plus the first duplicate groups.
func printDedup(schema *dataset.Schema, table *dataset.Table) {
	dres, err := dedup.Detect(table, dedup.Options{})
	if err != nil {
		fail("dedup: %v", err)
	}
	keyNames := make([]string, 0, len(dres.Key))
	for _, c := range dres.Key {
		keyNames = append(keyNames, schema.Attr(c).Name)
	}
	key := strings.Join(keyNames, ",")
	if dres.KeyDiscovered {
		key += " (discovered)"
	}
	fmt.Printf("duplicate scan: %d records, blocking key [%s]: %d exact + %d near groups, %d duplicate rows (%.2f%%)\n",
		dres.Rows, key, dres.ExactGroups, dres.NearGroups, dres.DuplicateRows, dres.DuplicateRate()*100)
	if dres.BlocksCapped > 0 {
		fmt.Printf("  note: %d oversized blocks truncated — near-duplicate coverage is partial\n", dres.BlocksCapped)
	}
	const maxGroups = 10
	for i := range dres.Groups {
		if i >= maxGroups {
			fmt.Printf("  ... and %d more groups\n", len(dres.Groups)-maxGroups)
			break
		}
		g := &dres.Groups[i]
		kind := "near"
		if g.Exact {
			kind = "exact"
		}
		fmt.Printf("  %-5s ids=%v  min similarity %.3f\n", kind, g.IDs, g.MinSimilarity)
	}
}

// runStream audits the source through the bounded-memory pipeline and
// prints the ranked top-K plus per-attribute deviation tallies.
func runStream(model *audit.Model, src dataset.RowSource, top, chunk, workers int, stats bool) {
	res, err := model.AuditStream(src, audit.StreamOptions{
		ChunkSize: chunk,
		Workers:   workers,
		TopK:      top,
	})
	if err != nil {
		fail("streaming audit: %v", err)
	}

	fmt.Printf("streamed %d records in %v: %d suspicious (error confidence >= %.2f)\n",
		res.RowsChecked, res.CheckTime, res.NumSuspicious, model.Opts.MinConfidence)
	for i := range res.Top {
		rep := &res.Top[i]
		fmt.Printf("%4d. record id=%d  confidence %.2f%%\n", i+1, rep.ID, rep.ErrorConf*100)
		fmt.Printf("      %s\n", model.DescribeFinding(rep.Best))
	}
	if res.TopTruncated {
		fmt.Printf("... and %d more (raise -top to rank them)\n", res.NumSuspicious-int64(len(res.Top)))
	}
	fmt.Println("per-attribute deviations:")
	for _, tally := range res.Attrs {
		if tally.Deviations == 0 {
			continue
		}
		fmt.Printf("  %-14s %8d deviations, %6d suspicious, max confidence %.2f%%\n",
			model.Schema.Attr(tally.Attr).Name, tally.Deviations, tally.Suspicious, tally.MaxErrorConf*100)
	}
	if stats {
		printStats(model, res.RowsChecked, res.NumSuspicious, res.CheckTime, res.Attrs)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "audit: "+format+"\n", args...)
	os.Exit(1)
}
