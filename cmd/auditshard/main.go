// Command auditshard audits one CSV batch across a fleet of auditd worker
// processes — the one-shot face of coordinator mode. It loads a published
// model from a registry directory, splits the batch into shards, scores
// them on the workers (replicating the model to any worker that lacks it)
// and merges the shard results into a single ranked report:
//
//	# three workers, default contiguous range shards
//	auditshard -dir ./auditd-data -name engines -in tonight.csv \
//	           -workers http://localhost:8081,http://localhost:8082,http://localhost:8083
//
//	# hash sharding, 12 shards, persisted result for byte-level diffing
//	auditshard -dir ./auditd-data -name engines -in tonight.csv \
//	           -workers http://localhost:8081 -strategy hash -shards 12 \
//	           -out sharded.gob
//
//	# the single-node oracle: same model, same batch, no workers
//	auditshard -dir ./auditd-data -name engines -in tonight.csv -local -out local.gob
//
// -out writes the merged audit.Result as gob with the wall-time field
// zeroed, so a sharded run and a -local run over the same inputs produce
// byte-identical files — the contract the multi-process e2e suite diffs.
package main

import (
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"dataaudit/internal/audit"
	"dataaudit/internal/dataset"
	"dataaudit/internal/registry"
	"dataaudit/internal/shard"
)

func main() {
	var (
		dir      = flag.String("dir", "", "registry directory holding the published model (required)")
		name     = flag.String("name", "", "model name in the registry (required)")
		version  = flag.Int("version", 0, "model version (0 = latest)")
		in       = flag.String("in", "", "input CSV with header row (required)")
		workers  = flag.String("workers", "", "comma-separated worker base URLs (required unless -local)")
		local    = flag.Bool("local", false, "score in-process instead of sharding — the single-node oracle")
		strategy = flag.String("strategy", "range", "row-to-shard assignment: range or hash")
		shards   = flag.Int("shards", 0, "shard count (0 = one per worker)")
		chunk    = flag.Int("chunk", 0, "rows per wire chunk (0 = default)")
		retries  = flag.Int("retries", 2, "re-dispatch attempts per shard after the first failure")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall audit deadline")
		out      = flag.String("out", "", "write the merged result as gob (wall time zeroed) for byte-level diffing")
		top      = flag.Int("top", 10, "number of top-ranked suspicious records to print")
	)
	flag.Parse()
	// Pin the gob type ids of the Result tree before anything else runs:
	// gob allocates wire type ids process-globally on first use, so the
	// sharded path's registry and wire-protocol encodings would otherwise
	// shift the ids and break -out byte-identity between a -local run and
	// a -workers run.
	_ = gob.NewEncoder(io.Discard).Encode(&audit.Result{})
	logger := log.New(os.Stderr, "auditshard ", log.LstdFlags)
	if *dir == "" || *name == "" || *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !*local && *workers == "" {
		logger.Fatal("-workers is required (or pass -local for the single-node oracle)")
	}

	reg, err := registry.Open(*dir)
	if err != nil {
		logger.Fatal(err)
	}
	var (
		model *audit.Model
		meta  registry.Meta
	)
	if *version > 0 {
		model, meta, err = reg.GetVersion(*name, *version)
	} else {
		model, meta, err = reg.Get(*name)
	}
	if err != nil {
		logger.Fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		logger.Fatal(err)
	}
	defer f.Close()
	tab, err := dataset.ReadCSV(f, model.Schema)
	if err != nil {
		logger.Fatalf("reading %s: %v", *in, err)
	}

	start := time.Now()
	var res *audit.Result
	if *local {
		res = model.AuditTable(tab)
	} else {
		strat, err := shard.ParseStrategy(*strategy)
		if err != nil {
			logger.Fatal(err)
		}
		coord, err := shard.New(shard.Options{
			Workers:   strings.Split(*workers, ","),
			Shards:    *shards,
			Strategy:  strat,
			ChunkRows: *chunk,
			Retries:   *retries,
			Logger:    logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		res, err = coord.AuditTable(ctx, model, meta, tab)
		if err != nil {
			logger.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	suspicious, _ := model.TallyResult(res)
	mode := "locally"
	if !*local {
		mode = fmt.Sprintf("across %d workers", len(strings.Split(*workers, ",")))
	}
	fmt.Printf("%s v%d: %d rows audited %s in %s, %d suspicious\n",
		meta.Name, meta.Version, len(res.Reports), mode, elapsed.Round(time.Millisecond), suspicious)
	for i, rep := range res.Suspicious() {
		if i >= *top {
			break
		}
		desc := ""
		if rep.Best != nil {
			desc = " — " + model.DescribeFinding(rep.Best)
		}
		fmt.Printf("  #%d row %d (id %d) conf %.3f%s\n", i+1, rep.Row, rep.ID, rep.ErrorConf, desc)
	}

	if *out != "" {
		cp := *res
		cp.CheckTime = 0
		of, err := os.Create(*out)
		if err != nil {
			logger.Fatal(err)
		}
		if err := gob.NewEncoder(of).Encode(&cp); err != nil {
			logger.Fatal(err)
		}
		if err := of.Close(); err != nil {
			logger.Fatal(err)
		}
	}
}
