// Command promcheck validates a Prometheus text exposition read from
// stdin (or a file argument) against the obs package's format oracle —
// HELP/TYPE ordering, label escaping, histogram bucket shape and
// deterministic series ordering — and exits non-zero on the first
// violation. scripts/e2e_metrics.sh pipes a live /metrics scrape
// through it so the CI e2e job fails on a malformed exposition, not
// just on a missing series:
//
//	curl -fsS localhost:8080/metrics | go run ./cmd/promcheck
package main

import (
	"fmt"
	"io"
	"os"

	"dataaudit/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	if err := obs.ValidateExposition(in); err != nil {
		fail("%v", err)
	}
	fmt.Fprintln(os.Stderr, "promcheck: exposition well-formed")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promcheck: "+format+"\n", args...)
	os.Exit(1)
}
