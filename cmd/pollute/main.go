// Command pollute applies the controlled data corruption of §4.2 to a CSV
// table: wrong values, nulls, limiter truncation, attribute switches and
// record duplication/deletion, each with its activation probability, and
// writes a complete corruption log as ground truth.
//
//	pollute -schema engine.schema -in clean.csv -out dirty.csv \
//	        -log corruption.csv -wrong 0.02 -null 0.01 -dup 0.002 -seed 7
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"dataaudit/internal/dataset"
	"dataaudit/internal/pollute"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "schema definition file (required)")
		in         = flag.String("in", "", "clean input CSV (required)")
		out        = flag.String("out", "dirty.csv", "dirty output CSV")
		logPath    = flag.String("log", "", "optional corruption-log CSV (the ground truth)")
		wrong      = flag.Float64("wrong", 0.02, "wrong-value activation probability per record")
		nullP      = flag.Float64("null", 0.01, "null-value activation probability per record")
		switchA    = flag.String("switch", "", "comma pair of attribute names for the switcher, e.g. CAT2,CAT3")
		switchP    = flag.Float64("switchp", 0.005, "switcher activation probability per record")
		dup        = flag.Float64("dup", 0.002, "duplicate probability per record")
		del        = flag.Float64("del", 0.001, "delete probability per record")
		factor     = flag.Float64("factor", 1, "common pollution factor multiplying all probabilities (§6.1)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *schemaPath == "" || *in == "" {
		fail("need -schema and -in")
	}
	schema, err := dataset.ParseSchemaFile(*schemaPath)
	if err != nil {
		fail("%v", err)
	}
	clean, err := dataset.ReadCSVFile(*in, schema)
	if err != nil {
		fail("%v", err)
	}

	plan := pollute.Plan{
		Cell: []pollute.Configured{
			{Prob: *wrong, P: &pollute.WrongValuePolluter{}},
			{Prob: *nullP, P: &pollute.NullValuePolluter{}},
		},
		DuplicateProb: *dup,
		DeleteProb:    *del,
	}
	if *switchA != "" {
		var a, b string
		if _, err := fmt.Sscanf(*switchA, "%[^,],%s", &a, &b); err != nil {
			fail("bad -switch value %q", *switchA)
		}
		ai, bi := schema.Index(a), schema.Index(b)
		if ai < 0 || bi < 0 {
			fail("-switch names unknown attributes")
		}
		plan.Cell = append(plan.Cell, pollute.Configured{Prob: *switchP, P: &pollute.Switcher{AttrA: ai, AttrB: bi}})
	}
	plan = plan.Scale(*factor)

	dirty, log := pollute.Run(clean, plan, rand.New(rand.NewSource(*seed)))
	if err := dataset.WriteCSVFile(*out, dirty); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "polluted %d -> %d records, %d corruption events, wrote %s\n",
		clean.NumRows(), dirty.NumRows(), len(log.Events), *out)

	if *logPath != "" {
		if err := writeLog(*logPath, schema, log); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote ground truth to %s\n", *logPath)
	}
}

func writeLog(path string, schema *dataset.Schema, log *pollute.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"record_id", "kind", "attribute", "before", "after", "dup_of"}); err != nil {
		return err
	}
	for _, e := range log.Events {
		attrName, before, after := "", "", ""
		if e.Attr >= 0 {
			a := schema.Attr(e.Attr)
			attrName = a.Name
			before = a.Format(e.Before)
			after = a.Format(e.After)
		}
		dupOf := ""
		if e.Kind == pollute.Duplicate {
			dupOf = strconv.FormatInt(e.DupOfID, 10)
		}
		if err := w.Write([]string{
			strconv.FormatInt(e.RecordID, 10), e.Kind.String(), attrName, before, after, dupOf,
		}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pollute: "+format+"\n", args...)
	os.Exit(1)
}
